#include "dm/density_matrix.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace hetarch {
namespace dm {

namespace {

/** True when @p x is a power of two. */
bool
isPow2(std::size_t x)
{
    return x && (x & (x - 1)) == 0;
}

/** log2 of a power of two. */
std::size_t
log2Exact(std::size_t x)
{
    std::size_t n = 0;
    while ((static_cast<std::size_t>(1) << n) < x)
        ++n;
    return n;
}

} // namespace

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : nq(num_qubits), rho(static_cast<std::size_t>(1) << num_qubits,
                          static_cast<std::size_t>(1) << num_qubits)
{
    HETARCH_ASSERT(num_qubits <= 12, "density matrix too large: ",
                   num_qubits, " qubits");
    rho(0, 0) = Complex(1.0, 0.0);
}

DensityMatrix
DensityMatrix::fromKet(const std::vector<Complex>& amplitudes)
{
    HETARCH_ASSERT(isPow2(amplitudes.size()), "ket length must be 2^n");
    const std::size_t n = log2Exact(amplitudes.size());
    DensityMatrix out(n);
    const std::size_t d = amplitudes.size();
    double norm2 = 0.0;
    for (const auto& a : amplitudes)
        norm2 += std::norm(a);
    HETARCH_ASSERT(norm2 > 0.0, "ket must be nonzero");
    for (std::size_t i = 0; i < d; ++i)
        for (std::size_t j = 0; j < d; ++j)
            out.rho(i, j) = amplitudes[i] * std::conj(amplitudes[j]) / norm2;
    return out;
}

DensityMatrix
DensityMatrix::bellPair(double infidelity)
{
    HETARCH_ASSERT(infidelity >= 0.0 && infidelity <= 0.75,
                   "Bell infidelity out of range: ", infidelity);
    const double s = 1.0 / std::sqrt(2.0);
    DensityMatrix out =
        fromKet({Complex(s, 0), Complex(0, 0), Complex(0, 0), Complex(s, 0)});
    if (infidelity > 0.0) {
        // Werner mixing: F = (1 - w) * 1 + w * 1/4  =>  w = 4/3 * eps.
        const double w = 4.0 / 3.0 * infidelity;
        out.rho *= Complex(1.0 - w, 0.0);
        for (std::size_t i = 0; i < 4; ++i)
            out.rho(i, i) += Complex(w / 4.0, 0.0);
    }
    return out;
}

DensityMatrix
DensityMatrix::tensor(const DensityMatrix& a, const DensityMatrix& b)
{
    DensityMatrix out(a.nq + b.nq);
    // Little-endian: a occupies low-order bits, so in kron() terms the
    // high-order factor is b.
    out.rho = linalg::kron(b.rho, a.rho);
    return out;
}

Matrix
DensityMatrix::embed(const Matrix& op,
                     const std::vector<std::size_t>& qubits) const
{
    const std::size_t k = qubits.size();
    HETARCH_ASSERT(op.rows() == (static_cast<std::size_t>(1) << k) &&
                   op.cols() == op.rows(),
                   "operator shape does not match qubit count");
    for (auto q : qubits)
        HETARCH_ASSERT(q < nq, "qubit index ", q, " out of range");

    const std::size_t d = dim();
    Matrix full(d, d);

    // Mask of target bits and the list of non-target bit positions.
    std::size_t target_mask = 0;
    for (auto q : qubits)
        target_mask |= static_cast<std::size_t>(1) << q;

    std::vector<std::size_t> rest_bits;
    for (std::size_t q = 0; q < nq; ++q)
        if (!(target_mask & (static_cast<std::size_t>(1) << q)))
            rest_bits.push_back(q);

    const std::size_t sub_dim = static_cast<std::size_t>(1) << k;
    const std::size_t rest_dim = static_cast<std::size_t>(1) << rest_bits.size();

    // expand(sub, rest) scatters a k-bit subspace index and an (n-k)-bit
    // environment index into a full n-bit basis index.
    auto expand = [&](std::size_t sub, std::size_t rest) {
        std::size_t idx = 0;
        for (std::size_t b = 0; b < k; ++b)
            if (sub & (static_cast<std::size_t>(1) << b))
                idx |= static_cast<std::size_t>(1) << qubits[b];
        for (std::size_t b = 0; b < rest_bits.size(); ++b)
            if (rest & (static_cast<std::size_t>(1) << b))
                idx |= static_cast<std::size_t>(1) << rest_bits[b];
        return idx;
    };

    for (std::size_t r = 0; r < rest_dim; ++r) {
        for (std::size_t si = 0; si < sub_dim; ++si) {
            const std::size_t row = expand(si, r);
            for (std::size_t sj = 0; sj < sub_dim; ++sj) {
                const Complex v = op(si, sj);
                if (v == Complex(0.0, 0.0))
                    continue;
                full(row, expand(sj, r)) = v;
            }
        }
    }
    return full;
}

void
DensityMatrix::applyUnitary(const Matrix& u,
                            const std::vector<std::size_t>& qubits)
{
    const Matrix full = embed(u, qubits);
    rho = full * rho * full.dagger();
}

void
DensityMatrix::applyKraus(const std::vector<Matrix>& kraus,
                          const std::vector<std::size_t>& qubits)
{
    HETARCH_ASSERT(!kraus.empty(), "empty Kraus set");
    Matrix acc(dim(), dim());
    for (const auto& k : kraus) {
        const Matrix full = embed(k, qubits);
        acc += full * rho * full.dagger();
    }
    rho = std::move(acc);
}

double
DensityMatrix::probOne(std::size_t qubit) const
{
    HETARCH_ASSERT(qubit < nq, "qubit out of range");
    const std::size_t bit = static_cast<std::size_t>(1) << qubit;
    double p = 0.0;
    for (std::size_t i = 0; i < dim(); ++i)
        if (i & bit)
            p += rho(i, i).real();
    return std::clamp(p, 0.0, 1.0);
}

bool
DensityMatrix::measureZ(std::size_t qubit, Rng& rng)
{
    const double p1 = probOne(qubit);
    const bool outcome = rng.bernoulli(p1);
    postselectZ(qubit, outcome);
    return outcome;
}

double
DensityMatrix::postselectZ(std::size_t qubit, bool outcome)
{
    HETARCH_ASSERT(qubit < nq, "qubit out of range");
    const std::size_t bit = static_cast<std::size_t>(1) << qubit;
    const double p = outcome ? probOne(qubit) : 1.0 - probOne(qubit);

    // Zero out all elements inconsistent with the outcome.
    for (std::size_t i = 0; i < dim(); ++i) {
        for (std::size_t j = 0; j < dim(); ++j) {
            const bool i_ok = (static_cast<bool>(i & bit) == outcome);
            const bool j_ok = (static_cast<bool>(j & bit) == outcome);
            if (!i_ok || !j_ok)
                rho(i, j) = Complex(0.0, 0.0);
        }
    }
    if (p < 1e-15) {
        // Outcome was (numerically) impossible; leave maximally mixed.
        rho = Matrix::identity(dim());
        rho *= Complex(1.0 / static_cast<double>(dim()), 0.0);
        return 0.0;
    }
    rho *= Complex(1.0 / p, 0.0);
    return p;
}

DensityMatrix
DensityMatrix::partialTrace(const std::vector<std::size_t>& keep) const
{
    for (auto q : keep)
        HETARCH_ASSERT(q < nq, "qubit out of range in partialTrace");

    std::size_t keep_mask = 0;
    for (auto q : keep)
        keep_mask |= static_cast<std::size_t>(1) << q;

    std::vector<std::size_t> traced_bits;
    for (std::size_t q = 0; q < nq; ++q)
        if (!(keep_mask & (static_cast<std::size_t>(1) << q)))
            traced_bits.push_back(q);

    const std::size_t keep_dim = static_cast<std::size_t>(1) << keep.size();
    const std::size_t env_dim =
        static_cast<std::size_t>(1) << traced_bits.size();

    auto expand = [&](std::size_t kept, std::size_t env) {
        std::size_t idx = 0;
        for (std::size_t b = 0; b < keep.size(); ++b)
            if (kept & (static_cast<std::size_t>(1) << b))
                idx |= static_cast<std::size_t>(1) << keep[b];
        for (std::size_t b = 0; b < traced_bits.size(); ++b)
            if (env & (static_cast<std::size_t>(1) << b))
                idx |= static_cast<std::size_t>(1) << traced_bits[b];
        return idx;
    };

    DensityMatrix out(keep.size());
    out.rho = Matrix(keep_dim, keep_dim);
    for (std::size_t i = 0; i < keep_dim; ++i)
        for (std::size_t j = 0; j < keep_dim; ++j) {
            Complex sum(0.0, 0.0);
            for (std::size_t e = 0; e < env_dim; ++e)
                sum += rho(expand(i, e), expand(j, e));
            out.rho(i, j) = sum;
        }
    return out;
}

double
DensityMatrix::purity() const
{
    return (rho * rho).trace().real();
}

double
DensityMatrix::fidelityWithKet(const std::vector<Complex>& amplitudes) const
{
    HETARCH_ASSERT(amplitudes.size() == dim(),
                   "ket length does not match register");
    // <psi|rho|psi>
    Complex acc(0.0, 0.0);
    for (std::size_t i = 0; i < dim(); ++i) {
        Complex row(0.0, 0.0);
        for (std::size_t j = 0; j < dim(); ++j)
            row += rho(i, j) * amplitudes[j];
        acc += std::conj(amplitudes[i]) * row;
    }
    return std::clamp(acc.real(), 0.0, 1.0);
}

double
DensityMatrix::bellFidelity() const
{
    HETARCH_ASSERT(nq == 2, "bellFidelity requires a 2-qubit state");
    const double s = 1.0 / std::sqrt(2.0);
    return fidelityWithKet({Complex(s, 0), Complex(0, 0),
                            Complex(0, 0), Complex(s, 0)});
}

double
DensityMatrix::expectation(const Matrix& observable,
                           const std::vector<std::size_t>& qubits) const
{
    const Matrix full = embed(observable, qubits);
    return (full * rho).trace().real();
}

double
DensityMatrix::traceReal() const
{
    return rho.trace().real();
}

void
DensityMatrix::normalize()
{
    const double t = traceReal();
    HETARCH_ASSERT(t > 1e-15, "cannot normalize zero-trace state");
    rho *= Complex(1.0 / t, 0.0);
}

} // namespace dm
} // namespace hetarch
