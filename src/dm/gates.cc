#include "dm/gates.hh"

#include <cmath>

namespace hetarch {
namespace dm {
namespace gates {

namespace {
const Complex i1(0.0, 1.0);
} // namespace

const Matrix&
I()
{
    static const Matrix m{{1, 0}, {0, 1}};
    return m;
}

const Matrix&
X()
{
    static const Matrix m{{0, 1}, {1, 0}};
    return m;
}

const Matrix&
Y()
{
    static const Matrix m{{0, -i1}, {i1, 0}};
    return m;
}

const Matrix&
Z()
{
    static const Matrix m{{1, 0}, {0, -1}};
    return m;
}

const Matrix&
H()
{
    static const double s = 1.0 / std::sqrt(2.0);
    static const Matrix m{{s, s}, {s, -s}};
    return m;
}

const Matrix&
S()
{
    static const Matrix m{{1, 0}, {0, i1}};
    return m;
}

const Matrix&
Sdg()
{
    static const Matrix m{{1, 0}, {0, -i1}};
    return m;
}

const Matrix&
T()
{
    static const Matrix m{{1, 0},
                          {0, std::exp(i1 * (M_PI / 4.0))}};
    return m;
}

Matrix
rx(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return Matrix{{c, -i1 * s}, {-i1 * s, c}};
}

Matrix
ry(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return Matrix{{c, -s}, {s, c}};
}

Matrix
rz(double theta)
{
    return Matrix{{std::exp(-i1 * (theta / 2.0)), 0},
                  {0, std::exp(i1 * (theta / 2.0))}};
}

const Matrix&
cnot()
{
    // Control = qubit 0 (low bit), target = qubit 1.
    // Basis order |q1 q0>: 00, 01, 10, 11 -> indices 0,1,2,3.
    // Control set means low bit = 1 (indices 1 and 3), which swap.
    static const Matrix m{{1, 0, 0, 0},
                          {0, 0, 0, 1},
                          {0, 0, 1, 0},
                          {0, 1, 0, 0}};
    return m;
}

const Matrix&
cz()
{
    static const Matrix m{{1, 0, 0, 0},
                          {0, 1, 0, 0},
                          {0, 0, 1, 0},
                          {0, 0, 0, -1}};
    return m;
}

const Matrix&
swapGate()
{
    static const Matrix m{{1, 0, 0, 0},
                          {0, 0, 1, 0},
                          {0, 1, 0, 0},
                          {0, 0, 0, 1}};
    return m;
}

const Matrix&
iswap()
{
    static const Matrix m{{1, 0, 0, 0},
                          {0, 0, i1, 0},
                          {0, i1, 0, 0},
                          {0, 0, 0, 1}};
    return m;
}

const Matrix&
proj0()
{
    static const Matrix m{{1, 0}, {0, 0}};
    return m;
}

const Matrix&
proj1()
{
    static const Matrix m{{0, 0}, {0, 1}};
    return m;
}

const Matrix&
sigmaMinus()
{
    static const Matrix m{{0, 1}, {0, 0}};
    return m;
}

const Matrix&
sigmaPlus()
{
    static const Matrix m{{0, 0}, {1, 0}};
    return m;
}

} // namespace gates
} // namespace dm
} // namespace hetarch
