/**
 * @file
 * Kraus-operator noise channels.
 *
 * Device decoherence is modeled with the standard T1 (amplitude
 * damping) / T2 (total dephasing) picture.  idleChannel(t, T1, T2)
 * composes amplitude damping with the pure-dephasing remainder so that
 * populations relax with T1 and coherences decay with T2; it agrees
 * with integrating the corresponding Lindblad equation (verified in
 * tests/dm/lindblad_test.cc).
 */

#pragma once

#include <vector>

#include "linalg/matrix.hh"

namespace hetarch {
namespace dm {

using linalg::Matrix;

namespace channels {

/** Amplitude damping with decay probability p = 1 - e^{-t/T1}. */
std::vector<Matrix> amplitudeDamping(double p);

/**
 * Phase damping parameterized so that off-diagonals shrink by
 * sqrt(1 - lambda).
 */
std::vector<Matrix> phaseDamping(double lambda);

/**
 * Combined idle-decoherence channel over duration @p t_ns for a device
 * with the given T1/T2 (both in ns).  Requires T2 <= 2*T1.
 */
std::vector<Matrix> idleChannel(double t_ns, double t1_ns, double t2_ns);

/** Single-qubit depolarizing channel with error probability p. */
std::vector<Matrix> depolarizing1(double p);

/** Two-qubit depolarizing channel with error probability p. */
std::vector<Matrix> depolarizing2(double p);

/** Bit-flip channel: X with probability p. */
std::vector<Matrix> bitFlip(double p);

/** Phase-flip channel: Z with probability p. */
std::vector<Matrix> phaseFlip(double p);

/**
 * Pure-dephasing rate gamma_phi = 1/T2 - 1/(2 T1) implied by a T1/T2
 * pair (in 1/ns).  Fatal if T2 > 2*T1 (unphysical).
 */
double pureDephasingRate(double t1_ns, double t2_ns);

/** Verify sum_i K_i^dagger K_i = I to within @p tol. */
bool isTracePreserving(const std::vector<Matrix>& kraus, double tol = 1e-10);

} // namespace channels
} // namespace dm
} // namespace hetarch
