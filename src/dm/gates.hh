/**
 * @file
 * Standard gate and Pauli matrices.
 *
 * Convention used throughout HetArch: computational basis states are
 * indexed little-endian, i.e. qubit q corresponds to bit q of the basis
 * index (qubit 0 is the least significant bit).  For multi-qubit gates
 * the *first* qubit argument is the first tensor factor acting on the
 * lowest-order bits of the gate's own index; see
 * DensityMatrix::applyUnitary for the embedding rule.
 */

#pragma once

#include "linalg/matrix.hh"

namespace hetarch {
namespace dm {

using linalg::Complex;
using linalg::Matrix;

namespace gates {

/** 2x2 identity. */
const Matrix& I();
/** Pauli X. */
const Matrix& X();
/** Pauli Y. */
const Matrix& Y();
/** Pauli Z. */
const Matrix& Z();
/** Hadamard. */
const Matrix& H();
/** Phase gate S = diag(1, i). */
const Matrix& S();
/** Inverse phase gate. */
const Matrix& Sdg();
/** T gate = diag(1, e^{i pi/4}). */
const Matrix& T();

/** Rotation about X by angle theta. */
Matrix rx(double theta);
/** Rotation about Y by angle theta. */
Matrix ry(double theta);
/** Rotation about Z by angle theta. */
Matrix rz(double theta);

/** CNOT with qubit 0 (low bit of the 4x4 index) as control. */
const Matrix& cnot();
/** Controlled-Z. */
const Matrix& cz();
/** SWAP. */
const Matrix& swapGate();
/** iSWAP. */
const Matrix& iswap();

/** Single-qubit projector |0><0|. */
const Matrix& proj0();
/** Single-qubit projector |1><1|. */
const Matrix& proj1();
/** Lowering operator sigma_minus = |0><1|. */
const Matrix& sigmaMinus();
/** Raising operator sigma_plus = |1><0|. */
const Matrix& sigmaPlus();

} // namespace gates
} // namespace dm
} // namespace hetarch
