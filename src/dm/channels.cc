#include "dm/channels.hh"

#include <cmath>

#include "core/logging.hh"
#include "dm/gates.hh"

namespace hetarch {
namespace dm {
namespace channels {

std::vector<Matrix>
amplitudeDamping(double p)
{
    HETARCH_ASSERT(p >= 0.0 && p <= 1.0, "damping probability out of range");
    const double keep = std::sqrt(1.0 - p);
    const double leak = std::sqrt(p);
    return {
        Matrix{{1, 0}, {0, keep}},
        Matrix{{0, leak}, {0, 0}},
    };
}

std::vector<Matrix>
phaseDamping(double lambda)
{
    HETARCH_ASSERT(lambda >= 0.0 && lambda <= 1.0,
                   "dephasing parameter out of range");
    const double keep = std::sqrt(1.0 - lambda);
    const double leak = std::sqrt(lambda);
    return {
        Matrix{{1, 0}, {0, keep}},
        Matrix{{0, 0}, {0, leak}},
    };
}

double
pureDephasingRate(double t1_ns, double t2_ns)
{
    HETARCH_ASSERT(t1_ns > 0.0 && t2_ns > 0.0, "coherence times must be > 0");
    const double rate = 1.0 / t2_ns - 0.5 / t1_ns;
    if (rate < -1e-12) {
        HETARCH_FATAL("unphysical coherence pair T1=", t1_ns, "ns, T2=",
                      t2_ns, "ns (requires T2 <= 2*T1)");
    }
    return rate > 0.0 ? rate : 0.0;
}

std::vector<Matrix>
idleChannel(double t_ns, double t1_ns, double t2_ns)
{
    HETARCH_ASSERT(t_ns >= 0.0, "idle duration must be non-negative");
    const double p_amp = 1.0 - std::exp(-t_ns / t1_ns);
    const double gphi = pureDephasingRate(t1_ns, t2_ns);
    // Off-diagonals should pick up e^{-gphi * t} from pure dephasing;
    // phaseDamping(lambda) multiplies them by sqrt(1 - lambda).
    const double lambda = 1.0 - std::exp(-2.0 * gphi * t_ns);

    const auto amp = amplitudeDamping(p_amp);
    const auto deph = phaseDamping(lambda);
    std::vector<Matrix> out;
    out.reserve(amp.size() * deph.size());
    for (const auto& d : deph)
        for (const auto& a : amp)
            out.push_back(d * a);
    return out;
}

std::vector<Matrix>
depolarizing1(double p)
{
    HETARCH_ASSERT(p >= 0.0 && p <= 1.0, "depolarizing p out of range");
    using namespace gates;
    const double keep = std::sqrt(1.0 - p);
    const double err = std::sqrt(p / 3.0);
    return {
        I() * Complex(keep, 0.0),
        X() * Complex(err, 0.0),
        Y() * Complex(err, 0.0),
        Z() * Complex(err, 0.0),
    };
}

std::vector<Matrix>
depolarizing2(double p)
{
    HETARCH_ASSERT(p >= 0.0 && p <= 1.0, "depolarizing p out of range");
    using namespace gates;
    const std::vector<const Matrix*> paulis{&I(), &X(), &Y(), &Z()};
    std::vector<Matrix> out;
    out.reserve(16);
    const double keep = std::sqrt(1.0 - p);
    const double err = std::sqrt(p / 15.0);
    for (std::size_t a = 0; a < 4; ++a) {
        for (std::size_t b = 0; b < 4; ++b) {
            const double w = (a == 0 && b == 0) ? keep : err;
            out.push_back(linalg::kron(*paulis[b], *paulis[a]) *
                          Complex(w, 0.0));
        }
    }
    return out;
}

std::vector<Matrix>
bitFlip(double p)
{
    using namespace gates;
    return {I() * Complex(std::sqrt(1.0 - p), 0.0),
            X() * Complex(std::sqrt(p), 0.0)};
}

std::vector<Matrix>
phaseFlip(double p)
{
    using namespace gates;
    return {I() * Complex(std::sqrt(1.0 - p), 0.0),
            Z() * Complex(std::sqrt(p), 0.0)};
}

bool
isTracePreserving(const std::vector<Matrix>& kraus, double tol)
{
    if (kraus.empty())
        return false;
    const std::size_t d = kraus.front().rows();
    Matrix acc(d, d);
    for (const auto& k : kraus)
        acc += k.dagger() * k;
    return acc.maxAbsDiff(Matrix::identity(d)) <= tol;
}

} // namespace channels
} // namespace dm
} // namespace hetarch
