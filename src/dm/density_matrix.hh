/**
 * @file
 * Exact density-matrix simulation of small qubit registers.
 *
 * This is the workhorse of standard-cell characterization: cells contain
 * 2-6 qubits, and their operations are characterized by evolving the
 * exact density matrix under gates and noise channels and extracting
 * fidelities from the result (HetArch paper, Sections 2 and 3.2).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hh"
#include "linalg/matrix.hh"

namespace hetarch {
namespace dm {

using linalg::Complex;
using linalg::Matrix;

/**
 * Density matrix over n qubits with little-endian basis indexing
 * (qubit q is bit q of the basis index).
 */
class DensityMatrix
{
  public:
    /** All-|0> state on @p num_qubits qubits. */
    explicit DensityMatrix(std::size_t num_qubits);

    /** Pure state rho = |psi><psi| from an amplitude vector. */
    static DensityMatrix fromKet(const std::vector<Complex>& amplitudes);

    /**
     * Two-qubit Bell state (|00> + |11>)/sqrt(2), optionally with
     * *infidelity* eps mixed in as a Werner state:
     * rho = (1-eps') |Phi+><Phi+| + eps' I/4 with eps' = 4 eps / 3 so
     * that the Bell fidelity is exactly 1 - eps.
     */
    static DensityMatrix bellPair(double infidelity = 0.0);

    /** Tensor product: @p a occupies the low-order qubits. */
    static DensityMatrix tensor(const DensityMatrix& a,
                                const DensityMatrix& b);

    std::size_t numQubits() const { return nq; }
    std::size_t dim() const { return static_cast<std::size_t>(1) << nq; }

    /** Underlying matrix (read-only). */
    const Matrix& matrix() const { return rho; }
    /** Underlying matrix (mutable; caller must preserve validity). */
    Matrix& matrix() { return rho; }

    /**
     * Apply a k-qubit unitary to the given qubits.  @p qubits lists the
     * register qubits corresponding to the gate's own tensor factors,
     * first entry = gate's low-order bit.
     */
    void applyUnitary(const Matrix& u, const std::vector<std::size_t>& qubits);

    /** Apply a Kraus channel {K_i} to the given qubits. */
    void applyKraus(const std::vector<Matrix>& kraus,
                    const std::vector<std::size_t>& qubits);

    /** Probability of measuring @p qubit in |1> (Z basis). */
    double probOne(std::size_t qubit) const;

    /**
     * Projective Z measurement of @p qubit: collapses the state,
     * renormalizes, and returns the outcome.
     */
    bool measureZ(std::size_t qubit, Rng& rng);

    /**
     * Postselect @p qubit on the given outcome; returns the probability
     * of that outcome.  State is renormalized (unless probability is
     * ~0, in which case the state is left maximally mixed and 0.0 is
     * returned).
     */
    double postselectZ(std::size_t qubit, bool outcome);

    /** Discard all qubits except @p keep (partial trace), reindexing. */
    DensityMatrix partialTrace(const std::vector<std::size_t>& keep) const;

    /** Tr(rho^2); 1 for pure states. */
    double purity() const;

    /** <psi|rho|psi> for a pure target given as amplitudes. */
    double fidelityWithKet(const std::vector<Complex>& amplitudes) const;

    /**
     * Fidelity with the Bell state (|00> + |11>)/sqrt(2); requires a
     * 2-qubit state.
     */
    double bellFidelity() const;

    /** Expectation value of a Hermitian observable on a subset. */
    double expectation(const Matrix& observable,
                       const std::vector<std::size_t>& qubits) const;

    /** Trace of the density matrix (should be ~1). */
    double traceReal() const;

    /** Renormalize so the trace is exactly 1. */
    void normalize();

    /**
     * Embed a k-qubit operator into the full register space given the
     * target qubits (exposed for the Lindblad solver).
     */
    Matrix embed(const Matrix& op,
                 const std::vector<std::size_t>& qubits) const;

  private:
    std::size_t nq;
    Matrix rho;
};

} // namespace dm
} // namespace hetarch
