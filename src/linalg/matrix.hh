/**
 * @file
 * Dense complex matrix type used by the density-matrix simulator.
 *
 * The matrices that HetArch characterizes are small (standard cells of
 * 2-6 qubits, so at most 64x64 for density matrices of 6 qubits are
 * avoided; the largest routine use is 2^5 x 2^5), so a simple row-major
 * dense representation with straightforward O(n^3) multiplication is
 * both adequate and easy to verify.
 */

#pragma once

#include <complex>
#include <initializer_list>
#include <vector>

namespace hetarch {
namespace linalg {

using Complex = std::complex<double>;

/** Row-major dense complex matrix. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from a nested initializer list (row major). */
    Matrix(std::initializer_list<std::initializer_list<Complex>> init);

    /** n x n identity. */
    static Matrix identity(std::size_t n);
    /** rows x cols of zeros. */
    static Matrix zeros(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }
    bool empty() const { return data.empty(); }

    /** Unchecked element access. */
    Complex& operator()(std::size_t r, std::size_t c)
    {
        return data[r * nCols + c];
    }
    Complex operator()(std::size_t r, std::size_t c) const
    {
        return data[r * nCols + c];
    }

    /** Raw storage (row-major), for tight inner loops. */
    Complex* raw() { return data.data(); }
    const Complex* raw() const { return data.data(); }

    Matrix& operator+=(const Matrix& other);
    Matrix& operator-=(const Matrix& other);
    Matrix& operator*=(Complex scalar);

    Matrix operator+(const Matrix& other) const;
    Matrix operator-(const Matrix& other) const;
    Matrix operator*(const Matrix& other) const;
    Matrix operator*(Complex scalar) const;

    /** Conjugate transpose. */
    Matrix dagger() const;
    /** Plain transpose. */
    Matrix transpose() const;
    /** Elementwise complex conjugate. */
    Matrix conjugate() const;

    /** Sum of diagonal entries. */
    Complex trace() const;
    /** Frobenius norm. */
    double frobeniusNorm() const;
    /** Largest elementwise |a_ij - b_ij|. */
    double maxAbsDiff(const Matrix& other) const;

    /** True when within tol of the conjugate transpose. */
    bool isHermitian(double tol = 1e-10) const;
    /** True when U * U^dagger is within tol of identity. */
    bool isUnitary(double tol = 1e-10) const;

  private:
    std::size_t nRows = 0;
    std::size_t nCols = 0;
    std::vector<Complex> data;
};

/** Scalar on the left. */
Matrix operator*(Complex scalar, const Matrix& m);

/** Kronecker (tensor) product a (x) b. */
Matrix kron(const Matrix& a, const Matrix& b);

/** Kronecker product of a list, left to right. */
Matrix kronAll(const std::vector<Matrix>& factors);

/** Commutator [a, b] = ab - ba. */
Matrix commutator(const Matrix& a, const Matrix& b);

/** Anticommutator {a, b} = ab + ba. */
Matrix anticommutator(const Matrix& a, const Matrix& b);

} // namespace linalg
} // namespace hetarch
