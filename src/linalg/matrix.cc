#include "linalg/matrix.hh"

#include <cmath>

#include "core/logging.hh"

namespace hetarch {
namespace linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : nRows(rows), nCols(cols), data(rows * cols, Complex(0.0, 0.0))
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> init)
{
    nRows = init.size();
    nCols = nRows ? init.begin()->size() : 0;
    data.reserve(nRows * nCols);
    for (const auto& row : init) {
        HETARCH_ASSERT(row.size() == nCols,
                       "ragged initializer list for Matrix");
        for (const auto& v : row)
            data.push_back(v);
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = Complex(1.0, 0.0);
    return m;
}

Matrix
Matrix::zeros(std::size_t rows, std::size_t cols)
{
    return Matrix(rows, cols);
}

Matrix&
Matrix::operator+=(const Matrix& other)
{
    HETARCH_ASSERT(nRows == other.nRows && nCols == other.nCols,
                   "matrix shape mismatch in +=");
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] += other.data[i];
    return *this;
}

Matrix&
Matrix::operator-=(const Matrix& other)
{
    HETARCH_ASSERT(nRows == other.nRows && nCols == other.nCols,
                   "matrix shape mismatch in -=");
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] -= other.data[i];
    return *this;
}

Matrix&
Matrix::operator*=(Complex scalar)
{
    for (auto& v : data)
        v *= scalar;
    return *this;
}

Matrix
Matrix::operator+(const Matrix& other) const
{
    Matrix out = *this;
    out += other;
    return out;
}

Matrix
Matrix::operator-(const Matrix& other) const
{
    Matrix out = *this;
    out -= other;
    return out;
}

Matrix
Matrix::operator*(const Matrix& other) const
{
    HETARCH_ASSERT(nCols == other.nRows, "matrix shape mismatch in *");
    Matrix out(nRows, other.nCols);
    // ikj loop order keeps the inner loop contiguous in both inputs.
    for (std::size_t i = 0; i < nRows; ++i) {
        for (std::size_t k = 0; k < nCols; ++k) {
            const Complex aik = (*this)(i, k);
            if (aik == Complex(0.0, 0.0))
                continue;
            const Complex* brow = other.raw() + k * other.nCols;
            Complex* orow = out.raw() + i * out.nCols;
            for (std::size_t j = 0; j < other.nCols; ++j)
                orow[j] += aik * brow[j];
        }
    }
    return out;
}

Matrix
Matrix::operator*(Complex scalar) const
{
    Matrix out = *this;
    out *= scalar;
    return out;
}

Matrix
Matrix::dagger() const
{
    Matrix out(nCols, nRows);
    for (std::size_t r = 0; r < nRows; ++r)
        for (std::size_t c = 0; c < nCols; ++c)
            out(c, r) = std::conj((*this)(r, c));
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(nCols, nRows);
    for (std::size_t r = 0; r < nRows; ++r)
        for (std::size_t c = 0; c < nCols; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

Matrix
Matrix::conjugate() const
{
    Matrix out = *this;
    for (auto& v : out.data)
        v = std::conj(v);
    return out;
}

Complex
Matrix::trace() const
{
    HETARCH_ASSERT(nRows == nCols, "trace of non-square matrix");
    Complex t(0.0, 0.0);
    for (std::size_t i = 0; i < nRows; ++i)
        t += (*this)(i, i);
    return t;
}

double
Matrix::frobeniusNorm() const
{
    double s = 0.0;
    for (const auto& v : data)
        s += std::norm(v);
    return std::sqrt(s);
}

double
Matrix::maxAbsDiff(const Matrix& other) const
{
    HETARCH_ASSERT(nRows == other.nRows && nCols == other.nCols,
                   "matrix shape mismatch in maxAbsDiff");
    double m = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i)
        m = std::max(m, std::abs(data[i] - other.data[i]));
    return m;
}

bool
Matrix::isHermitian(double tol) const
{
    if (nRows != nCols)
        return false;
    return maxAbsDiff(dagger()) <= tol;
}

bool
Matrix::isUnitary(double tol) const
{
    if (nRows != nCols)
        return false;
    return ((*this) * dagger()).maxAbsDiff(identity(nRows)) <= tol;
}

Matrix
operator*(Complex scalar, const Matrix& m)
{
    return m * scalar;
}

Matrix
kron(const Matrix& a, const Matrix& b)
{
    Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
    for (std::size_t ar = 0; ar < a.rows(); ++ar) {
        for (std::size_t ac = 0; ac < a.cols(); ++ac) {
            const Complex av = a(ar, ac);
            if (av == Complex(0.0, 0.0))
                continue;
            for (std::size_t br = 0; br < b.rows(); ++br)
                for (std::size_t bc = 0; bc < b.cols(); ++bc)
                    out(ar * b.rows() + br, ac * b.cols() + bc) =
                        av * b(br, bc);
        }
    }
    return out;
}

Matrix
kronAll(const std::vector<Matrix>& factors)
{
    HETARCH_ASSERT(!factors.empty(), "kronAll of empty list");
    Matrix out = factors.front();
    for (std::size_t i = 1; i < factors.size(); ++i)
        out = kron(out, factors[i]);
    return out;
}

Matrix
commutator(const Matrix& a, const Matrix& b)
{
    return a * b - b * a;
}

Matrix
anticommutator(const Matrix& a, const Matrix& b)
{
    return a * b + b * a;
}

} // namespace linalg
} // namespace hetarch
