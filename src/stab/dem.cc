#include "stab/dem.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "core/logging.hh"

namespace hetarch {
namespace stab {

namespace {

/**
 * A sensitivity set: sorted ids of annotations flipped by a Pauli error
 * at the current circuit position.  Detector d is id d; observable k is
 * id kObsBase + k.
 */
using SensSet = std::vector<std::uint32_t>;

constexpr std::uint32_t kObsBase = 0x80000000u;

/** Symmetric difference, keeping the result sorted. */
void
xorInto(SensSet& a, const SensSet& b)
{
    if (b.empty())
        return;
    SensSet out;
    out.reserve(a.size() + b.size());
    std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                  std::back_inserter(out));
    a = std::move(out);
}

SensSet
xorOf(const SensSet& a, const SensSet& b)
{
    SensSet out = a;
    xorInto(out, b);
    return out;
}

} // namespace

double
DetectorErrorModel::totalErrorWeight() const
{
    double w = 0.0;
    for (const auto& m : mechanisms)
        w += m.probability;
    return w;
}

std::vector<std::uint32_t>
DetectorErrorModel::detectorFlipCounts() const
{
    std::vector<std::uint32_t> counts(numDetectors, 0);
    for (const auto& m : mechanisms)
        for (auto d : m.detectors)
            ++counts[d];
    return counts;
}

std::uint32_t
DetectorErrorModel::flippableObservables() const
{
    std::uint32_t mask = 0;
    for (const auto& m : mechanisms)
        mask |= m.observables;
    return mask;
}

std::pair<std::vector<std::uint8_t>, std::uint32_t>
DetectorErrorModel::applyMechanisms(
    const std::vector<std::uint32_t>& indices) const
{
    std::vector<std::uint8_t> dets(numDetectors, 0);
    std::uint32_t obs = 0;
    for (auto i : indices) {
        HETARCH_ASSERT(i < mechanisms.size(),
                       "mechanism index out of range");
        for (auto d : mechanisms[i].detectors)
            dets[d] ^= 1;
        obs ^= mechanisms[i].observables;
    }
    return {std::move(dets), obs};
}

std::pair<std::vector<std::uint8_t>, std::uint32_t>
DetectorErrorModel::sample(Rng& rng) const
{
    std::vector<std::uint8_t> dets(numDetectors, 0);
    std::uint32_t obs = 0;
    for (const auto& m : mechanisms) {
        if (rng.bernoulli(m.probability)) {
            for (auto d : m.detectors)
                dets[d] ^= 1;
            obs ^= m.observables;
        }
    }
    return {std::move(dets), obs};
}

DetectorErrorModel
buildDetectorErrorModel(const Circuit& circuit)
{
    HETARCH_ASSERT(circuit.numObservables() <= 32,
                   "at most 32 observables supported");

    // Measurement index -> annotation ids referencing it.
    std::vector<SensSet> meas_ann(circuit.numMeasurements());
    {
        std::uint32_t det_id = 0;
        for (const auto& op : circuit.ops()) {
            if (op.code == OpCode::DETECTOR) {
                for (auto m : op.targets)
                    xorInto(meas_ann[m], {det_id});
                ++det_id;
            } else if (op.code == OpCode::OBSERVABLE) {
                for (auto m : op.targets)
                    xorInto(meas_ann[m], {kObsBase + op.id});
            }
        }
    }

    const std::size_t nq = circuit.numQubits();
    std::vector<SensSet> sens_x(nq), sens_z(nq);

    // Accumulate mechanisms keyed by their sensitivity set, combining
    // probabilities of independent identical mechanisms.
    std::map<SensSet, double> acc;
    auto emit = [&](double p, const SensSet& set) {
        if (p <= 0.0 || set.empty())
            return;
        auto [it, inserted] = acc.try_emplace(set, p);
        if (!inserted) {
            const double q = it->second;
            it->second = q * (1.0 - p) + p * (1.0 - q);
        }
    };

    // Measurement indices are assigned in forward order; walking in
    // reverse we count down.
    std::size_t next_meas = circuit.numMeasurements();

    const auto& ops = circuit.ops();
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
        const Op& op = *it;
        switch (op.code) {
          case OpCode::H:
            std::swap(sens_x[op.targets[0]], sens_z[op.targets[0]]);
            break;
          case OpCode::S:
          case OpCode::SDG:
            // X before S acts as Y after: pick up the Z sensitivity.
            xorInto(sens_x[op.targets[0]], sens_z[op.targets[0]]);
            break;
          case OpCode::X:
          case OpCode::Y:
          case OpCode::Z:
            break;
          case OpCode::CX: {
            const auto c = op.targets[0], t = op.targets[1];
            // X_c -> X_c X_t ; Z_t -> Z_t Z_c.
            xorInto(sens_x[c], sens_x[t]);
            xorInto(sens_z[t], sens_z[c]);
            break;
          }
          case OpCode::CZ: {
            const auto a = op.targets[0], b = op.targets[1];
            // X_a -> X_a Z_b ; X_b -> X_b Z_a.
            xorInto(sens_x[a], sens_z[b]);
            xorInto(sens_x[b], sens_z[a]);
            break;
          }
          case OpCode::SWAP: {
            const auto a = op.targets[0], b = op.targets[1];
            std::swap(sens_x[a], sens_x[b]);
            std::swap(sens_z[a], sens_z[b]);
            break;
          }
          case OpCode::M: {
            --next_meas;
            const auto q = op.targets[0];
            // X before a Z measurement flips the outcome and survives;
            // Z before it is erased by the collapse.
            xorInto(sens_x[q], meas_ann[next_meas]);
            sens_z[q].clear();
            break;
          }
          case OpCode::R: {
            const auto q = op.targets[0];
            sens_x[q].clear();
            sens_z[q].clear();
            break;
          }
          case OpCode::MR: {
            --next_meas;
            const auto q = op.targets[0];
            // Reverse of (M then R): the reset erases everything after,
            // then the measurement makes X sensitive to the record.
            sens_x[q] = meas_ann[next_meas];
            sens_z[q].clear();
            break;
          }
          case OpCode::X_ERROR:
            emit(op.params[0], sens_x[op.targets[0]]);
            break;
          case OpCode::Z_ERROR:
            emit(op.params[0], sens_z[op.targets[0]]);
            break;
          case OpCode::PAULI1: {
            const auto q = op.targets[0];
            emit(op.params[0], sens_x[q]);
            emit(op.params[1], xorOf(sens_x[q], sens_z[q]));
            emit(op.params[2], sens_z[q]);
            break;
          }
          case OpCode::DEPOL1: {
            const auto q = op.targets[0];
            const double p3 = op.params[0] / 3.0;
            emit(p3, sens_x[q]);
            emit(p3, xorOf(sens_x[q], sens_z[q]));
            emit(p3, sens_z[q]);
            break;
          }
          case OpCode::DEPOL2: {
            const auto qa = op.targets[0], qb = op.targets[1];
            const double p15 = op.params[0] / 15.0;
            const SensSet ya = xorOf(sens_x[qa], sens_z[qa]);
            const SensSet yb = xorOf(sens_x[qb], sens_z[qb]);
            const SensSet* setsA[4] = {nullptr, &sens_x[qa], &ya,
                                       &sens_z[qa]};
            const SensSet* setsB[4] = {nullptr, &sens_x[qb], &yb,
                                       &sens_z[qb]};
            for (int a = 0; a < 4; ++a) {
                for (int b = 0; b < 4; ++b) {
                    if (a == 0 && b == 0)
                        continue;
                    SensSet set;
                    if (setsA[a])
                        set = *setsA[a];
                    if (setsB[b])
                        xorInto(set, *setsB[b]);
                    emit(p15, set);
                }
            }
            break;
          }
          case OpCode::DETECTOR:
          case OpCode::OBSERVABLE:
            break; // handled through meas_ann
        }
    }
    HETARCH_ASSERT(next_meas == 0, "measurement bookkeeping out of sync");

    DetectorErrorModel dem;
    dem.numDetectors = circuit.numDetectors();
    dem.numObservables = circuit.numObservables();
    dem.mechanisms.reserve(acc.size());
    for (const auto& [set, p] : acc) {
        ErrorMechanism mech;
        mech.probability = p;
        for (auto id : set) {
            if (id >= kObsBase)
                mech.observables |= 1u << (id - kObsBase);
            else
                mech.detectors.push_back(id);
        }
        dem.mechanisms.push_back(std::move(mech));
    }
    return dem;
}

} // namespace stab
} // namespace hetarch
