/**
 * @file
 * Aaronson–Gottesman stabilizer tableau simulator.
 *
 * Exact simulation of Clifford circuits with measurement.  This is the
 * *reference* simulator: O(n^2) per measurement, used for correctness
 * tests, detector-determinism validation, and small systems.  Bulk
 * Monte-Carlo sampling uses FrameSimulator instead.
 */

#pragma once

#include <optional>
#include <vector>

#include "core/rng.hh"
#include "stab/circuit.hh"
#include "stab/pauli.hh"

namespace hetarch {
namespace stab {

/**
 * Stabilizer state of n qubits in tableau form: n destabilizer rows
 * followed by n stabilizer rows, each a signed Pauli string.
 */
class TableauSimulator
{
  public:
    /** |0...0> state on @p num_qubits qubits. */
    explicit TableauSimulator(std::size_t num_qubits);

    std::size_t numQubits() const { return nq; }

    // --- gates ---------------------------------------------------------
    void h(std::size_t q);
    void s(std::size_t q);
    void sdg(std::size_t q);
    void x(std::size_t q);
    void y(std::size_t q);
    void z(std::size_t q);
    void cx(std::size_t control, std::size_t target);
    void cz(std::size_t a, std::size_t b);
    void swapQubits(std::size_t a, std::size_t b);

    /** Apply an arbitrary Pauli string as an error. */
    void applyPauli(const PauliString& p);

    /**
     * Measure @p q in Z.  Returns the outcome; sets @p was_random (if
     * non-null) to whether the outcome was a coin flip.  When
     * @p forced_outcome is set and the measurement is random, that
     * outcome is used instead of consulting the RNG.
     */
    bool measure(std::size_t q, Rng& rng, bool* was_random = nullptr,
                 std::optional<bool> forced_outcome = std::nullopt);

    /** Reset @p q to |0>. */
    void reset(std::size_t q, Rng& rng);

    /** Expectation of a Pauli string: +1, -1, or 0 (indeterminate). */
    int expectation(const PauliString& p) const;

    /** Current stabilizer generators (for tests). */
    std::vector<PauliString> stabilizers() const;

    /**
     * Run a full circuit, sampling noise with @p rng.  Returns the
     * measurement record.
     */
    std::vector<bool> run(const Circuit& circuit, Rng& rng);

    /**
     * Noiseless reference run: noise ops are skipped and every random
     * measurement outcome is forced to 0.  @p random_mask (if non-null)
     * receives one flag per measurement telling whether it was random.
     */
    std::vector<bool> referenceRun(const Circuit& circuit,
                                   std::vector<bool>* random_mask = nullptr);

    /**
     * Compute detector and observable values from a measurement record.
     * Returns {detector values, observable values}.
     */
    static std::pair<std::vector<bool>, std::vector<bool>>
    annotationsFromRecord(const Circuit& circuit,
                          const std::vector<bool>& record);

    /**
     * Validate that every detector of @p circuit is deterministic under
     * noiseless execution: runs the noiseless circuit @p trials times
     * with different random-measurement outcomes and checks detector
     * parities never change.  Observables must be deterministic too.
     */
    static bool checkDetectorsDeterministic(const Circuit& circuit,
                                            int trials = 4,
                                            std::uint64_t seed = 12345);

  private:
    /** row_h *= row_i with sign tracking. */
    void rowMult(std::size_t h, std::size_t i);

    std::size_t nq;
    /** 2*nq rows: [0,nq) destabilizers, [nq,2nq) stabilizers. */
    std::vector<PauliString> rows;
};

} // namespace stab
} // namespace hetarch
