/**
 * @file
 * Compiled frame programs: a Circuit lowered once into a flat op
 * stream plus sparse detector/observable XOR masks.
 *
 * The Pauli-frame sampler used to re-interpret the full op list per
 * 64-shot batch — including the annotation ops it skips — and then
 * re-scan it a second time to fold measurement flips into detectors.
 * A FrameProgram hoists all of that out of the hot loop:
 *
 *   - unitary/noise/measure ops become a dense array of compact
 *     FrameOps with pre-resolved noise plans (e.g. the PAULI1 channel's
 *     conditional branch probabilities are divided out at compile
 *     time), and ops that neither touch the frame nor consume
 *     randomness (bare Paulis, annotations, zero-probability PAULI1)
 *     are dropped entirely;
 *   - DETECTOR/OBSERVABLE annotations become CSR lists of
 *     measurement-record indices, so folding a batch is one sparse XOR
 *     pass over packed words instead of an op-list scan.
 *
 * The compiled program consumes the RNG stream *identically* to the
 * legacy interpreter: every op that draws randomness is kept (even
 * no-op ones like X_ERROR(p=0), whose biasedWord call returns without
 * drawing — dropping it would be safe, but keeping the call sites
 * aligned makes the equivalence argument local to each opcode), the op
 * order is unchanged, and pre-resolved probabilities are the same IEEE
 * doubles the interpreter would compute per batch.  This is what lets
 * fixed-seed artifacts survive the migration bit-for-bit.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rng.hh"
#include "stab/circuit.hh"

namespace hetarch {
namespace stab {

/** Compact opcode set of the compiled frame stream. */
enum class FrameOpCode : std::uint8_t
{
    H,       ///< swap x/z on qubit a
    SGate,   ///< S or SDG: z ^= x on qubit a
    CX,      ///< a = control, b = target
    CZ,
    Swap,
    M,       ///< record x[a]; one rng draw collapses the z frame
    R,       ///< clear x/z on qubit a
    MR,      ///< record x[a], then clear (no rng draw)
    XError,  ///< p0 = probability
    ZError,  ///< p0 = probability
    Pauli1,  ///< p0 = ptot, p1 = P(X | error), p2 = P(Y | error, not X)
    Depol1,  ///< p0 = probability
    Depol2,  ///< qubits a/b, p0 = probability
};

/** One compiled op.  Noise plans are pre-resolved into p0/p1/p2. */
struct FrameOp
{
    FrameOpCode code;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    /**
     * First noise-tape slot of this op (block execution): the RNG
     * resolution pass writes the op's drawn masks into tape rows
     * [tape, tape + slots), and the vectorized replay pass XORs them
     * into the frame.  Zero-slot ops (pure Cliffords, R) never read it.
     */
    std::uint32_t tape = 0;
    double p0 = 0.0;
    double p1 = 0.0;
    double p2 = 0.0;
};

/** Reusable per-thread frame state for 64-shot batches. */
struct FrameScratch
{
    std::vector<std::uint64_t> x;    ///< X-flip per qubit (bit = shot)
    std::vector<std::uint64_t> z;    ///< Z-flip per qubit
    std::vector<std::uint64_t> meas; ///< measurement flips, record order
};

/**
 * Reusable per-thread frame state for W-word block batches (W x 64
 * shots).  All rows are word-blocks: qubit q's X frame occupies
 * x[q * words .. q * words + words), measurement record m occupies
 * meas[m * words ..), and noise-tape slot t occupies tape[t * words ..).
 * Word j of every row holds the same 64-shot lane group, so word-major
 * slices of a block are bit-identical to W independent 64-shot batches.
 */
struct FrameBlockScratch
{
    std::size_t words = 0; ///< block width the buffers are sized for
    std::vector<std::uint64_t> x;
    std::vector<std::uint64_t> z;
    std::vector<std::uint64_t> meas;
    std::vector<std::uint64_t> tape; ///< resolved noise masks, slot-major
    /// Batch-major resolution staging (transposed into `tape`; see
    /// resolveNoiseTape) — untouched at width 1.
    std::vector<std::uint64_t> stage;
    std::vector<std::uint64_t> fold; ///< annotation-fold accumulator row
};

/**
 * One compiled slice ("round") of the op stream: the half-open op,
 * measurement-record, detector and per-slice-observable ranges it
 * covers.  Slices partition the stream; boundaries fall where a qubit
 * is measured for the second time since the previous boundary, which
 * for round-structured circuits (every ancilla measured once per
 * round) lands exactly one QEC round per slice.
 */
struct FrameSliceInfo
{
    std::uint32_t opBegin = 0;   ///< first compiled op of the slice
    std::uint32_t opEnd = 0;
    std::uint32_t measBegin = 0; ///< first measurement record
    std::uint32_t measEnd = 0;
    std::uint32_t detBegin = 0;  ///< first detector emitted in the slice
    std::uint32_t detEnd = 0;
    std::uint32_t obsBegin = 0;  ///< per-slice observable entry range
    std::uint32_t obsEnd = 0;
};

/**
 * Per-thread frame state for streaming slice execution.  Instead of
 * the full measurement record, measurement flips land in a bounded
 * power-of-two ring sized by the program's measurement lookback (how
 * far back any detector reaches, ~2 rounds for memory circuits), so
 * peak storage is independent of the round count.
 */
struct FrameStreamScratch
{
    std::vector<std::uint64_t> x;
    std::vector<std::uint64_t> z;
    std::vector<std::uint64_t> measRing; ///< pow2-sized record ring
    std::size_t measCursor = 0; ///< absolute index of the next record
};

/**
 * A circuit lowered for batched frame simulation.  Immutable after
 * compile(); safe to share across threads (DecoderCache stores one per
 * circuit beside the DEM).
 */
class FrameProgram
{
  public:
    /**
     * Lower @p circuit.  @p depol2_retries is the rejection-sampling
     * retry budget of the DEPOL2 channel; the default matches the
     * legacy interpreter and must not be changed outside tests (the
     * RNG-consumption contract pins it).
     */
    static std::shared_ptr<const FrameProgram>
    compile(const Circuit& circuit, int depol2_retries = kDepol2Retries);

    /** Legacy interpreter's DEPOL2 retry budget. */
    static constexpr int kDepol2Retries = 12;

    std::size_t numQubits() const { return nQubits; }
    std::size_t numMeasurements() const { return nMeas; }
    std::size_t numDetectors() const { return nDets; }
    std::size_t numObservables() const { return nObs; }

    const std::vector<FrameOp>& ops() const { return stream; }

    /** Measurement indices of detector @p d (CSR view). */
    const std::uint32_t* detMeasBegin(std::size_t d) const
    {
        return detMeas.data() + detOffsets[d];
    }
    const std::uint32_t* detMeasEnd(std::size_t d) const
    {
        return detMeas.data() + detOffsets[d + 1];
    }
    /** Measurement indices folded into observable @p k (CSR view). */
    const std::uint32_t* obsMeasBegin(std::size_t k) const
    {
        return obsMeas.data() + obsOffsets[k];
    }
    const std::uint32_t* obsMeasEnd(std::size_t k) const
    {
        return obsMeas.data() + obsOffsets[k + 1];
    }

    /**
     * Run one 64-shot batch into @p scratch (resized/cleared here, so
     * callers just reuse one FrameScratch across batches).  Returns the
     * number of applied noise-op error lanes (the frame_flips counter
     * contribution), popcounted over all 64 lanes including idle lanes
     * of a final partial batch — exactly the legacy accounting.
     */
    std::uint64_t runBatch(FrameScratch& scratch, Rng& rng) const;

    /**
     * XOR-fold the batch's measurement words into one packed word per
     * detector/observable: detector d's word lands in @p det_words[d],
     * observable k's in @p obs_words[k] (both masked by @p lane_mask so
     * idle lanes of a partial batch stay zero).  The strides let
     * callers write straight into detector-major packed sample
     * buffers.
     */
    void foldAnnotations(const FrameScratch& scratch,
                         std::uint64_t lane_mask, std::uint64_t* det_words,
                         std::size_t det_stride, std::uint64_t* obs_words,
                         std::size_t obs_stride) const;

    // --- word-block (SIMD) execution --------------------------------
    //
    // runBatchBlock() executes W consecutive 64-shot batches at once
    // and is bit-identical to W sequential runBatch() calls on the
    // same generator, including the generator's post-state.  The
    // equivalence rests on two facts:
    //
    //   1. RNG consumption is *frame-independent*: every draw site —
    //      including the DEPOL2 rejection retries, which depend only on
    //      previously drawn values — consumes the stream without
    //      looking at x/z.  So the resolution pass can draw word w's
    //      entire noise tape before word w+1's (the exact sequential
    //      order runBatch uses) while deferring all frame updates.
    //   2. Frame propagation is bitwise per lane: with the draws fixed
    //      on the tape, replaying the op stream over W-word rows
    //      computes each word exactly as the 1-word interpreter would.
    //
    // The two passes are exposed separately so benches can time the
    // vectorized replay (frame propagation) apart from the RNG work,
    // and tests can pin the tape/replay split directly.

    /** Noise-tape slots per 64-shot batch (rows of the tape buffer). */
    std::size_t tapeWords() const { return nTapeSlots; }

    /**
     * Pass 1: size @p scratch for a @p words-word block and resolve
     * the whole block's noise tape, drawing word-by-word in the exact
     * sequential runBatch order.  Frame and measurement rows are
     * zeroed.  Returns the applied error-lane popcount over all words
     * (the frame_flips contribution, identical to the sum of W
     * runBatch returns).
     */
    std::uint64_t resolveNoiseTape(FrameBlockScratch& scratch,
                                   std::size_t words, Rng& rng) const;

    /**
     * Pass 2: replay the op stream over the W-word frame rows, XORing
     * the resolved tape at every noise site and recording measurement
     * rows.  Requires a scratch prepared by resolveNoiseTape (or, for
     * replay-only benchmarking, a re-zeroed frame with the tape kept).
     */
    void replayBlock(FrameBlockScratch& scratch) const;

    /** resolveNoiseTape + replayBlock; returns the flip popcount. */
    std::uint64_t runBatchBlock(FrameBlockScratch& scratch,
                                std::size_t words, Rng& rng) const;

    /**
     * XOR-fold a block's measurement rows into W packed words per
     * detector/observable: detector d's word j lands in
     * @p det_words[d * det_stride + j], observable k's in
     * @p obs_words[k * obs_stride + j].  @p last_word_mask masks the
     * block's final word (idle lanes of a trailing partial batch);
     * earlier words are always full.
     */
    void foldAnnotationsBlock(FrameBlockScratch& scratch,
                              std::uint64_t last_word_mask,
                              std::uint64_t* det_words,
                              std::size_t det_stride,
                              std::uint64_t* obs_words,
                              std::size_t obs_stride) const;

    // --- streaming (sliced) execution -------------------------------
    //
    // Running beginStream() then runSlice(0..numSlices()-1) consumes
    // the RNG stream *identically* to one runBatch() call: the slices
    // partition the same op array and the interpreter is shared, so
    // every draw happens in the same order with the same parameters.
    // foldSlice() over all slices reproduces foldAnnotations() exactly
    // (detectors are partitioned by slice; observable words accumulate
    // per-slice XOR contributions and must start zeroed).

    /** Number of compiled slices (>= 1 for a non-empty program). */
    std::size_t numSlices() const { return slices.size(); }
    /** Ranges of slice @p s. */
    const FrameSliceInfo& sliceInfo(std::size_t s) const
    {
        return slices[s];
    }
    /**
     * Measurement-record lookback: the farthest any slice's detectors
     * or observable entries reach behind that slice's last record.
     * The streaming ring holds this many words regardless of circuit
     * length (bounded-memory guarantee).
     */
    std::size_t measLookback() const { return lookback; }
    /** Power-of-two capacity of the streaming measurement ring. */
    std::size_t measRingCapacity() const { return ringCapacity; }

    /** Reset @p scratch for a fresh 64-shot streaming batch. */
    void beginStream(FrameStreamScratch& scratch) const;

    /**
     * Run slice @p s of the current batch (slices must run in order
     * from 0).  Returns the applied error-lane popcount, the same
     * accounting as runBatch — summed over all slices it equals the
     * runBatch return value for the identical RNG stream.
     */
    std::uint64_t runSlice(std::size_t s, FrameStreamScratch& scratch,
                           Rng& rng) const;

    /**
     * Fold slice @p s's annotations from the measurement ring.
     * Detector d in [detBegin, detEnd) is *assigned* to
     * @p det_words[(d - detBegin) * det_stride]; the slice's share of
     * observable k is *XORed* into @p obs_words[k * obs_stride].  Call
     * after runSlice(s) and before runSlice of a slice that overwrites
     * the lookback window.
     */
    void foldSlice(std::size_t s, const FrameStreamScratch& scratch,
                   std::uint64_t lane_mask, std::uint64_t* det_words,
                   std::size_t det_stride, std::uint64_t* obs_words,
                   std::size_t obs_stride) const;

  private:
    std::size_t nQubits = 0;
    std::size_t nMeas = 0;
    std::size_t nDets = 0;
    std::size_t nObs = 0;
    int depol2Retries = kDepol2Retries;
    std::vector<FrameOp> stream;
    /** RNG-consuming ops only (tape slots assigned), resolution order. */
    std::vector<FrameOp> rngOps;
    std::size_t nTapeSlots = 0;
    std::vector<std::uint32_t> detOffsets; ///< size nDets + 1
    std::vector<std::uint32_t> detMeas;
    std::vector<std::uint32_t> obsOffsets; ///< size nObs + 1
    std::vector<std::uint32_t> obsMeas;
    std::vector<FrameSliceInfo> slices;
    /** Per-slice observable entries: (observable id, record index). */
    std::vector<std::uint32_t> sliceObsId;
    std::vector<std::uint32_t> sliceObsMeas;
    std::size_t lookback = 0;
    std::size_t ringCapacity = 1;
};

/** Hard cap on the sampler's block width (512 shots per block). */
inline constexpr std::size_t kMaxFrameBlockWords = 8;

/**
 * Process-wide sampler block width in 64-bit words (1..8; default 8 =
 * 512 shots per block, overridable via the HETARCH_SIMD_WIDTH
 * environment variable).  Results are bit-identical at every width —
 * the width only trades dispatch amortization against scratch size —
 * which the lane/word-permutation tests pin at {1, 4, 8}.
 */
std::size_t frameBlockWords();

/** Override the block width (clamped to [1, kMaxFrameBlockWords]). */
void setFrameBlockWords(std::size_t words);

} // namespace stab
} // namespace hetarch
