#include "stab/frame.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "core/logging.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace stab {

namespace {

// Telemetry.  Flip counts are per 64-lane word (idle lanes of a final
// partial batch included), so they are bit-identical for any chunking
// of a shot budget and any worker count.
obs::Counter& cSamplerCalls = obs::counter("stab.sampler.calls");
obs::Counter& cSamplerShots = obs::counter("stab.sampler.shots");
obs::Counter& cSamplerBatches = obs::counter("stab.sampler.batches");
obs::Counter& cFrameFlips = obs::counter("stab.sampler.frame_flips");

/** One 64-shot batch of frame state. */
struct Batch
{
    std::vector<std::uint64_t> x;     // X-flip per qubit (bit = shot)
    std::vector<std::uint64_t> z;     // Z-flip per qubit
    std::vector<std::uint64_t> meas;  // measurement flips, in record order
    std::uint64_t flips = 0;          // noise-op error lanes applied

    explicit Batch(std::size_t nq, std::size_t n_meas)
        : x(nq, 0), z(nq, 0)
    {
        meas.reserve(n_meas);
    }
};

/** Run the circuit once over a 64-shot batch. */
void
runBatch(const Circuit& circ, Batch& b, Rng& rng)
{
    for (const auto& op : circ.ops()) {
        switch (op.code) {
          case OpCode::H:
            std::swap(b.x[op.targets[0]], b.z[op.targets[0]]);
            break;
          case OpCode::S:
          case OpCode::SDG:
            // S X S^dag = Y, S Z S^dag = Z: frame z picks up x.
            b.z[op.targets[0]] ^= b.x[op.targets[0]];
            break;
          case OpCode::X:
          case OpCode::Y:
          case OpCode::Z:
            break; // Paulis commute with the frame (up to sign)
          case OpCode::CX: {
            const auto c = op.targets[0], t = op.targets[1];
            b.x[t] ^= b.x[c];
            b.z[c] ^= b.z[t];
            break;
          }
          case OpCode::CZ: {
            const auto a = op.targets[0], t = op.targets[1];
            b.z[a] ^= b.x[t];
            b.z[t] ^= b.x[a];
            break;
          }
          case OpCode::SWAP: {
            const auto a = op.targets[0], t = op.targets[1];
            std::swap(b.x[a], b.x[t]);
            std::swap(b.z[a], b.z[t]);
            break;
          }
          case OpCode::M:
            b.meas.push_back(b.x[op.targets[0]]);
            // Measurement collapse randomizes the frame phase.
            b.z[op.targets[0]] ^= rng();
            break;
          case OpCode::R:
            b.x[op.targets[0]] = 0;
            b.z[op.targets[0]] = 0;
            break;
          case OpCode::MR:
            b.meas.push_back(b.x[op.targets[0]]);
            b.x[op.targets[0]] = 0;
            b.z[op.targets[0]] = 0;
            break;
          case OpCode::X_ERROR: {
            const std::uint64_t err = rng.biasedWord(op.params[0]);
            b.x[op.targets[0]] ^= err;
            b.flips += std::popcount(err);
            break;
          }
          case OpCode::Z_ERROR: {
            const std::uint64_t err = rng.biasedWord(op.params[0]);
            b.z[op.targets[0]] ^= err;
            b.flips += std::popcount(err);
            break;
          }
          case OpCode::PAULI1: {
            const double px = op.params[0];
            const double py = op.params[1];
            const double pz = op.params[2];
            const double ptot = px + py + pz;
            if (ptot <= 0.0)
                break;
            const std::uint64_t err = rng.biasedWord(ptot);
            const std::uint64_t pick_x = rng.biasedWord(px / ptot);
            const double rest = py + pz;
            const std::uint64_t pick_y =
                rng.biasedWord(rest > 0.0 ? py / rest : 0.0);
            const std::uint64_t mx = err & pick_x;
            const std::uint64_t my = err & ~pick_x & pick_y;
            const std::uint64_t mz = err & ~pick_x & ~pick_y;
            b.x[op.targets[0]] ^= mx | my;
            b.z[op.targets[0]] ^= mz | my;
            b.flips += std::popcount(err);
            break;
          }
          case OpCode::DEPOL1: {
            const double p = op.params[0];
            const std::uint64_t err = rng.biasedWord(p);
            const std::uint64_t pick_x = rng.biasedWord(1.0 / 3.0);
            const std::uint64_t pick_y = rng.biasedWord(0.5);
            const std::uint64_t mx = err & pick_x;
            const std::uint64_t my = err & ~pick_x & pick_y;
            const std::uint64_t mz = err & ~pick_x & ~pick_y;
            b.x[op.targets[0]] ^= mx | my;
            b.z[op.targets[0]] ^= mz | my;
            b.flips += std::popcount(err);
            break;
          }
          case OpCode::DEPOL2: {
            const auto qa = op.targets[0], qb = op.targets[1];
            const std::uint64_t err = rng.biasedWord(op.params[0]);
            if (!err)
                break;
            // Uniform non-identity two-qubit Pauli per erring lane:
            // draw 4 random bits and reject the all-zero combination.
            std::uint64_t v0 = rng(), v1 = rng(), v2 = rng(), v3 = rng();
            for (int tries = 0; tries < 12; ++tries) {
                const std::uint64_t zero = err & ~(v0 | v1 | v2 | v3);
                if (!zero)
                    break;
                const std::uint64_t r0 = rng(), r1 = rng(), r2 = rng(),
                                    r3 = rng();
                v0 = (v0 & ~zero) | (r0 & zero);
                v1 = (v1 & ~zero) | (r1 & zero);
                v2 = (v2 & ~zero) | (r2 & zero);
                v3 = (v3 & ~zero) | (r3 & zero);
            }
            // Any lane still all-zero after the retries (prob 16^-12)
            // is forced to X on qubit a.
            const std::uint64_t still = err & ~(v0 | v1 | v2 | v3);
            v0 |= still;
            b.x[qa] ^= err & v0;
            b.z[qa] ^= err & v1;
            b.x[qb] ^= err & v2;
            b.z[qb] ^= err & v3;
            b.flips += std::popcount(err);
            break;
          }
          case OpCode::DETECTOR:
          case OpCode::OBSERVABLE:
            break; // handled from the measurement-flip record
        }
    }
}

} // namespace

FrameSimulator::FrameSimulator(const Circuit& circuit)
    : circ(circuit)
{
}

DetectorSamples
FrameSimulator::sampleDetectors(std::size_t shots, Rng& rng) const
{
    DetectorSamples out;
    out.shots = shots;
    out.numDetectors = circ.numDetectors();
    out.numObservables = circ.numObservables();
    out.detectors.assign(shots * out.numDetectors, 0);
    out.observables.assign(shots * out.numObservables, 0);

    // Batched locally, flushed as single adds after the loop.
    std::uint64_t batches = 0;
    std::uint64_t flips = 0;

    std::size_t done = 0;
    while (done < shots) {
        const std::size_t lanes = std::min<std::size_t>(64, shots - done);
        Batch batch(circ.numQubits(), circ.numMeasurements());
        runBatch(circ, batch, rng);
        ++batches;
        flips += batch.flips;

        // Fold measurement-flip words into detector/observable words.
        std::size_t det_idx = 0;
        for (const auto& op : circ.ops()) {
            if (op.code == OpCode::DETECTOR) {
                std::uint64_t word = 0;
                for (auto m : op.targets)
                    word ^= batch.meas[m];
                for (std::size_t lane = 0; lane < lanes; ++lane) {
                    out.detectors[(done + lane) * out.numDetectors +
                                  det_idx] =
                        static_cast<std::uint8_t>((word >> lane) & 1);
                }
                ++det_idx;
            } else if (op.code == OpCode::OBSERVABLE) {
                std::uint64_t word = 0;
                for (auto m : op.targets)
                    word ^= batch.meas[m];
                for (std::size_t lane = 0; lane < lanes; ++lane) {
                    out.observables[(done + lane) * out.numObservables +
                                    op.id] ^=
                        static_cast<std::uint8_t>((word >> lane) & 1);
                }
            }
        }
        done += lanes;
    }
    cSamplerCalls.add();
    cSamplerShots.add(shots);
    cSamplerBatches.add(batches);
    cFrameFlips.add(flips);
    return out;
}

std::vector<std::uint8_t>
FrameSimulator::sampleMeasurementFlips(Rng& rng) const
{
    Batch batch(circ.numQubits(), circ.numMeasurements());
    runBatch(circ, batch, rng);
    std::vector<std::uint8_t> out(batch.meas.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint8_t>(batch.meas[i] & 1);
    return out;
}

} // namespace stab
} // namespace hetarch
