#include "stab/frame.hh"

#include <algorithm>
#include <bit>
#include <mutex>
#include <utility>

#include "core/logging.hh"
#include "core/simd.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace stab {

namespace {

// Telemetry.  Flip counts are per 64-lane word (idle lanes of a final
// partial batch included), so they are bit-identical for any chunking
// of a shot budget and any worker count.  noise_words counts resolved
// noise-tape rows (tape slots x 64-shot batches) — a function of the
// program and the shot budget alone, so it too is invariant under
// worker count AND under the sampler's SIMD block width.
obs::Counter& cSamplerCalls = obs::counter("stab.sampler.calls");
obs::Counter& cSamplerShots = obs::counter("stab.sampler.shots");
obs::Counter& cSamplerBatches = obs::counter("stab.sampler.batches");
obs::Counter& cFrameFlips = obs::counter("stab.sampler.frame_flips");
obs::Counter& cNoiseWords = obs::counter("stab.sampler.noise_words");

/** Legacy interpreter: run the circuit once over a 64-shot batch. */
void
runBatchReference(const Circuit& circ, FrameScratch& b, Rng& rng,
                  std::uint64_t& flips)
{
    b.x.assign(circ.numQubits(), 0);
    b.z.assign(circ.numQubits(), 0);
    b.meas.clear();
    b.meas.reserve(circ.numMeasurements());
    for (const auto& op : circ.ops()) {
        switch (op.code) {
          case OpCode::H:
            std::swap(b.x[op.targets[0]], b.z[op.targets[0]]);
            break;
          case OpCode::S:
          case OpCode::SDG:
            // S X S^dag = Y, S Z S^dag = Z: frame z picks up x.
            b.z[op.targets[0]] ^= b.x[op.targets[0]];
            break;
          case OpCode::X:
          case OpCode::Y:
          case OpCode::Z:
            break; // Paulis commute with the frame (up to sign)
          case OpCode::CX: {
            const auto c = op.targets[0], t = op.targets[1];
            b.x[t] ^= b.x[c];
            b.z[c] ^= b.z[t];
            break;
          }
          case OpCode::CZ: {
            const auto a = op.targets[0], t = op.targets[1];
            b.z[a] ^= b.x[t];
            b.z[t] ^= b.x[a];
            break;
          }
          case OpCode::SWAP: {
            const auto a = op.targets[0], t = op.targets[1];
            std::swap(b.x[a], b.x[t]);
            std::swap(b.z[a], b.z[t]);
            break;
          }
          case OpCode::M:
            b.meas.push_back(b.x[op.targets[0]]);
            // Measurement collapse randomizes the frame phase.
            b.z[op.targets[0]] ^= rng();
            break;
          case OpCode::R:
            b.x[op.targets[0]] = 0;
            b.z[op.targets[0]] = 0;
            break;
          case OpCode::MR:
            b.meas.push_back(b.x[op.targets[0]]);
            b.x[op.targets[0]] = 0;
            b.z[op.targets[0]] = 0;
            break;
          case OpCode::X_ERROR: {
            const std::uint64_t err = rng.biasedWord(op.params[0]);
            b.x[op.targets[0]] ^= err;
            flips += simd::popcountWord(err);
            break;
          }
          case OpCode::Z_ERROR: {
            const std::uint64_t err = rng.biasedWord(op.params[0]);
            b.z[op.targets[0]] ^= err;
            flips += simd::popcountWord(err);
            break;
          }
          case OpCode::PAULI1: {
            const double px = op.params[0];
            const double py = op.params[1];
            const double pz = op.params[2];
            const double ptot = px + py + pz;
            if (ptot <= 0.0)
                break;
            const std::uint64_t err = rng.biasedWord(ptot);
            const std::uint64_t pick_x = rng.biasedWord(px / ptot);
            const double rest = py + pz;
            const std::uint64_t pick_y =
                rng.biasedWord(rest > 0.0 ? py / rest : 0.0);
            const std::uint64_t mx = err & pick_x;
            const std::uint64_t my = err & ~pick_x & pick_y;
            const std::uint64_t mz = err & ~pick_x & ~pick_y;
            b.x[op.targets[0]] ^= mx | my;
            b.z[op.targets[0]] ^= mz | my;
            flips += simd::popcountWord(err);
            break;
          }
          case OpCode::DEPOL1: {
            const double p = op.params[0];
            const std::uint64_t err = rng.biasedWord(p);
            const std::uint64_t pick_x = rng.biasedWord(1.0 / 3.0);
            const std::uint64_t pick_y = rng.biasedWord(0.5);
            const std::uint64_t mx = err & pick_x;
            const std::uint64_t my = err & ~pick_x & pick_y;
            const std::uint64_t mz = err & ~pick_x & ~pick_y;
            b.x[op.targets[0]] ^= mx | my;
            b.z[op.targets[0]] ^= mz | my;
            flips += simd::popcountWord(err);
            break;
          }
          case OpCode::DEPOL2: {
            const auto qa = op.targets[0], qb = op.targets[1];
            const std::uint64_t err = rng.biasedWord(op.params[0]);
            if (!err)
                break;
            // Uniform non-identity two-qubit Pauli per erring lane:
            // draw 4 random bits and reject the all-zero combination.
            std::uint64_t v0 = rng(), v1 = rng(), v2 = rng(), v3 = rng();
            for (int tries = 0; tries < 12; ++tries) {
                const std::uint64_t zero = err & ~(v0 | v1 | v2 | v3);
                if (!zero)
                    break;
                const std::uint64_t r0 = rng(), r1 = rng(), r2 = rng(),
                                    r3 = rng();
                v0 = (v0 & ~zero) | (r0 & zero);
                v1 = (v1 & ~zero) | (r1 & zero);
                v2 = (v2 & ~zero) | (r2 & zero);
                v3 = (v3 & ~zero) | (r3 & zero);
            }
            // Any lane still all-zero after the retries (prob 16^-12)
            // is forced to X on qubit a.
            const std::uint64_t still = err & ~(v0 | v1 | v2 | v3);
            v0 |= still;
            b.x[qa] ^= err & v0;
            b.z[qa] ^= err & v1;
            b.x[qb] ^= err & v2;
            b.z[qb] ^= err & v3;
            flips += simd::popcountWord(err);
            break;
          }
          case OpCode::DETECTOR:
          case OpCode::OBSERVABLE:
            break; // handled from the measurement-flip record
        }
    }
}

} // namespace

std::size_t
DetectorSamples::shotWeight(std::size_t shot) const
{
    HETARCH_DEBUG_ASSERT(shot < shots, "shot ", shot, " out of range");
    const std::size_t w = shot / 64;
    const std::uint64_t bit = std::uint64_t{1} << (shot % 64);
    std::size_t weight = 0;
    for (std::size_t d = 0; d < numDetectors; ++d)
        weight += (detWords[d * numWords + w] & bit) != 0;
    return weight;
}

std::vector<std::uint8_t>
DetectorSamples::unpackedDetectors() const
{
    std::vector<std::uint8_t> out(shots * numDetectors);
    for (std::size_t s = 0; s < shots; ++s)
        for (std::size_t d = 0; d < numDetectors; ++d)
            out[s * numDetectors + d] = det(s, d);
    return out;
}

std::vector<std::uint8_t>
DetectorSamples::unpackedObservables() const
{
    std::vector<std::uint8_t> out(shots * numObservables);
    for (std::size_t s = 0; s < shots; ++s)
        for (std::size_t k = 0; k < numObservables; ++k)
            out[s * numObservables + k] = obs(s, k);
    return out;
}

void
DetectorSamples::resize(std::size_t n_shots, std::size_t n_detectors,
                        std::size_t n_observables)
{
    shots = n_shots;
    numDetectors = n_detectors;
    numObservables = n_observables;
    numWords = (n_shots + 63) / 64;
    detWords.assign(numDetectors * numWords, 0);
    obsWords.assign(numObservables * numWords, 0);
}

void
DetectorSamples::append(const DetectorSamples& other)
{
    HETARCH_ASSERT(numDetectors == other.numDetectors &&
                       numObservables == other.numObservables,
                   "appending incompatible sample buffers");
    HETARCH_ASSERT(shots % 64 == 0,
                   "append requires a 64-aligned shot count so packed "
                   "rows concatenate word-wise");
    const std::size_t words = numWords + other.numWords;
    std::vector<std::uint64_t> dets(numDetectors * words, 0);
    for (std::size_t d = 0; d < numDetectors; ++d) {
        std::copy_n(detWords.begin() +
                        static_cast<std::ptrdiff_t>(d * numWords),
                    numWords,
                    dets.begin() + static_cast<std::ptrdiff_t>(d * words));
        std::copy_n(other.detWords.begin() +
                        static_cast<std::ptrdiff_t>(d * other.numWords),
                    other.numWords,
                    dets.begin() +
                        static_cast<std::ptrdiff_t>(d * words + numWords));
    }
    std::vector<std::uint64_t> obss(numObservables * words, 0);
    for (std::size_t k = 0; k < numObservables; ++k) {
        std::copy_n(obsWords.begin() +
                        static_cast<std::ptrdiff_t>(k * numWords),
                    numWords,
                    obss.begin() + static_cast<std::ptrdiff_t>(k * words));
        std::copy_n(other.obsWords.begin() +
                        static_cast<std::ptrdiff_t>(k * other.numWords),
                    other.numWords,
                    obss.begin() +
                        static_cast<std::ptrdiff_t>(k * words + numWords));
    }
    shots += other.shots;
    numWords = words;
    detWords = std::move(dets);
    obsWords = std::move(obss);
}

DetectorStream::DetectorStream(
    std::shared_ptr<const FrameProgram> program, std::size_t shots)
    : prog(std::move(program)), nShots(shots),
      nBatches((shots + 63) / 64)
{
    HETARCH_ASSERT(prog, "null frame program");
}

bool
DetectorStream::next(Rng& rng, SyndromeBlock& block)
{
    if (curBatch >= nBatches) {
        // Exhausted: flush the same telemetry one sampleDetectors()
        // call over this chunk would have produced, exactly once.
        if (!flushed) {
            flushed = true;
            cSamplerCalls.add();
            cSamplerShots.add(nShots);
            cSamplerBatches.add(nBatches);
            cFrameFlips.add(flips);
            cNoiseWords.add(prog->tapeWords() * nBatches);
        }
        return false;
    }

    if (curSlice == 0)
        prog->beginStream(scratch);

    const auto& info = prog->sliceInfo(curSlice);
    const std::size_t lanes =
        std::min<std::size_t>(64, nShots - curBatch * 64);
    flips += prog->runSlice(curSlice, scratch, rng);

    block.batch = curBatch;
    block.slice = curSlice;
    block.lanes = lanes;
    block.detBegin = info.detBegin;
    block.detWords.assign(info.detEnd - info.detBegin, 0);
    block.obsWords.assign(prog->numObservables(), 0);
    const std::uint64_t mask =
        lanes == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
    prog->foldSlice(curSlice, scratch, mask, block.detWords.data(), 1,
                    block.obsWords.data(), 1);

    block.lastSliceOfBatch = curSlice + 1 == prog->numSlices();
    if (block.lastSliceOfBatch) {
        curSlice = 0;
        ++curBatch;
    } else {
        ++curSlice;
    }
    return true;
}

FrameSimulator::FrameSimulator(const Circuit& circuit)
    : circ(&circuit), prog(FrameProgram::compile(circuit))
{
}

FrameSimulator::FrameSimulator(std::shared_ptr<const FrameProgram> program)
    : prog(std::move(program))
{
    HETARCH_ASSERT(prog, "null frame program");
}

DetectorSamples
FrameSimulator::sampleDetectors(std::size_t shots, Rng& rng) const
{
    DetectorSamples out;
    out.resize(shots, prog->numDetectors(), prog->numObservables());

    // Batched locally, flushed as single adds after the loop.
    std::uint64_t batches = 0;
    std::uint64_t flips = 0;

    // Word-parallel blocks: up to frameBlockWords() 64-shot batches are
    // propagated per program walk.  Noise is resolved word-by-word in
    // the exact sequential RNG order (resolveNoiseTape), so samples are
    // bit-identical at every block width — see DESIGN.md.
    const std::size_t block =
        std::min(frameBlockWords(), kMaxFrameBlockWords);
    FrameBlockScratch scratch;
    for (std::size_t w0 = 0; w0 < out.numWords; w0 += block) {
        const std::size_t words =
            std::min<std::size_t>(block, out.numWords - w0);
        flips += prog->runBatchBlock(scratch, words, rng);
        batches += words;
        const std::size_t last_lanes =
            std::min<std::size_t>(64, shots - (w0 + words - 1) * 64);
        const std::uint64_t mask =
            last_lanes == 64 ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << last_lanes) - 1;
        prog->foldAnnotationsBlock(scratch, mask,
                                   out.detWords.data() + w0, out.numWords,
                                   out.obsWords.data() + w0, out.numWords);
    }
    cSamplerCalls.add();
    cSamplerShots.add(shots);
    cSamplerBatches.add(batches);
    cFrameFlips.add(flips);
    cNoiseWords.add(prog->tapeWords() * batches);
    return out;
}

DetectorSamples
FrameSimulator::sampleDetectorsReference(std::size_t shots, Rng& rng) const
{
    HETARCH_ASSERT(circ,
                   "reference sampling needs a Circuit-constructed "
                   "FrameSimulator");
    DetectorSamples out;
    out.resize(shots, circ->numDetectors(), circ->numObservables());

    std::uint64_t batches = 0;
    std::uint64_t flips = 0;

    FrameScratch batch;
    std::size_t done = 0;
    while (done < shots) {
        const std::size_t lanes = std::min<std::size_t>(64, shots - done);
        runBatchReference(*circ, batch, rng, flips);
        ++batches;

        // Fold measurement-flip words into detector/observable values
        // by re-scanning the op list, exactly like the pre-compiled
        // sampler did — bit by bit through the packed layout.
        const std::size_t word = done / 64;
        std::size_t det_idx = 0;
        for (const auto& op : circ->ops()) {
            if (op.code == OpCode::DETECTOR) {
                std::uint64_t w = 0;
                for (auto m : op.targets)
                    w ^= batch.meas[m];
                for (std::size_t lane = 0; lane < lanes; ++lane) {
                    out.detWords[det_idx * out.numWords + word] |=
                        ((w >> lane) & 1) << lane;
                }
                ++det_idx;
            } else if (op.code == OpCode::OBSERVABLE) {
                std::uint64_t w = 0;
                for (auto m : op.targets)
                    w ^= batch.meas[m];
                for (std::size_t lane = 0; lane < lanes; ++lane) {
                    out.obsWords[op.id * out.numWords + word] ^=
                        ((w >> lane) & 1) << lane;
                }
            }
        }
        done += lanes;
    }
    cSamplerCalls.add();
    cSamplerShots.add(shots);
    cSamplerBatches.add(batches);
    cFrameFlips.add(flips);
    // The reference interpreter draws the same noise words inline that
    // the packed path resolves onto its tape; count them identically so
    // the two paths stay counter-parity as well as bit-parity.
    cNoiseWords.add(prog->tapeWords() * batches);
    return out;
}

void
recordSimdTelemetry()
{
    // Machine-dependent by design (excluded from exact metric compare);
    // recorded once per process, and only from the bench harness — the
    // library paths never touch it, so per-job counter-delta snapshots
    // stay machine-independent and deterministic.
    static std::once_flag once;
    std::call_once(once, [] {
        obs::counter("stab.sampler.simd_width").add(simd::vectorWords());
    });
}

std::vector<std::uint8_t>
FrameSimulator::sampleMeasurementFlips(Rng& rng) const
{
    FrameScratch scratch;
    prog->runBatch(scratch, rng);
    std::vector<std::uint8_t> out(scratch.meas.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint8_t>(scratch.meas[i] & 1);
    return out;
}

} // namespace stab
} // namespace hetarch
