/**
 * @file
 * Detector error model (DEM) extraction.
 *
 * A DEM reduces a noisy Clifford circuit to a list of independent
 * *error mechanisms*: each mechanism fires with some probability and
 * flips a known set of detectors and logical observables.  Decoders
 * operate on the DEM rather than the circuit.
 *
 * Extraction runs a single reverse pass over the circuit, maintaining
 * for every qubit the set of detectors/observables sensitive to an X
 * or Z error at the current position (Pauli sensitivity sets).  This
 * is O(#ops x set-size) — the same trick Stim uses — so building the
 * DEM for a distance-18 surface-code experiment takes milliseconds.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hh"
#include "stab/circuit.hh"

namespace hetarch {
namespace stab {

/** One independent error mechanism. */
struct ErrorMechanism
{
    double probability = 0.0;
    /** Sorted detector ids flipped when this mechanism fires. */
    std::vector<std::uint32_t> detectors;
    /** Bitmask of logical observables flipped. */
    std::uint32_t observables = 0;
};

/** The full detector error model of a circuit. */
struct DetectorErrorModel
{
    std::size_t numDetectors = 0;
    std::size_t numObservables = 0;
    std::vector<ErrorMechanism> mechanisms;

    /**
     * Sample one shot: fires each mechanism independently, returning
     * the detector event vector and observable mask.
     */
    std::pair<std::vector<std::uint8_t>, std::uint32_t>
    sample(Rng& rng) const;

    /** Sum of mechanism probabilities (diagnostic). */
    double totalErrorWeight() const;

    /**
     * How many mechanisms flip each detector.  A zero entry is a dead
     * detector: no modeled error can ever fire it, so it contributes
     * nothing to decoding (the fault analyzer flags these).
     */
    std::vector<std::uint32_t> detectorFlipCounts() const;

    /** Bitmask of observables flipped by at least one mechanism. */
    std::uint32_t flippableObservables() const;

    /**
     * Combined effect of firing exactly the mechanisms in @p indices:
     * XOR of their detector sets and observable masks.  Order does not
     * matter; firing the same mechanism twice cancels.  This is how a
     * fault-path certificate is checked: a valid undetected logical
     * fault leaves every detector at 0 with the observable bit set.
     */
    std::pair<std::vector<std::uint8_t>, std::uint32_t>
    applyMechanisms(const std::vector<std::uint32_t>& indices) const;
};

/**
 * Extract the detector error model of @p circuit.
 *
 * Requirements: every detector must be noise-deterministic (see
 * TableauSimulator::checkDetectorsDeterministic) and the number of
 * observables must be <= 32.
 */
DetectorErrorModel buildDetectorErrorModel(const Circuit& circuit);

} // namespace stab
} // namespace hetarch
