/**
 * @file
 * Pauli-string algebra over n qubits.
 *
 * A PauliString is stored in the symplectic (x, z) representation: the
 * operator on qubit q is
 *   x=0,z=0 -> I      x=1,z=0 -> X
 *   x=1,z=1 -> Y      x=0,z=1 -> Z
 * together with a global phase i^phase (phase in {0,1,2,3}).  Bits are
 * packed 64 per word.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hetarch {
namespace stab {

/** Packed bit vector with word-level access. */
class BitVec
{
  public:
    BitVec() = default;
    /** All-zero vector of @p n bits. */
    explicit BitVec(std::size_t n);

    std::size_t size() const { return nBits; }

    bool get(std::size_t i) const
    {
        return (words[i >> 6] >> (i & 63)) & 1;
    }
    void set(std::size_t i, bool v)
    {
        const std::uint64_t mask = std::uint64_t(1) << (i & 63);
        if (v)
            words[i >> 6] |= mask;
        else
            words[i >> 6] &= ~mask;
    }
    void flip(std::size_t i) { words[i >> 6] ^= std::uint64_t(1) << (i & 63); }

    /** XOR-accumulate another vector of the same length. */
    BitVec& operator^=(const BitVec& other);

    /** Number of set bits. */
    std::size_t popcount() const;
    /** True when every bit is zero. */
    bool allZero() const;
    /** Parity of the AND with another vector (symplectic helper). */
    bool andParity(const BitVec& other) const;

    /** Word storage, for tight loops. */
    std::vector<std::uint64_t>& raw() { return words; }
    const std::vector<std::uint64_t>& raw() const { return words; }

    bool operator==(const BitVec& other) const = default;

  private:
    std::size_t nBits = 0;
    std::vector<std::uint64_t> words;
};

/** n-qubit Pauli operator with phase i^phase. */
class PauliString
{
  public:
    /** Identity on @p n qubits. */
    explicit PauliString(std::size_t n = 0);

    /**
     * Parse from text like "XIZY" (qubit 0 first) with optional leading
     * sign: "+", "-", "+i", "-i".
     */
    static PauliString fromString(const std::string& text);

    /** Single-qubit Pauli embedded at @p qubit in an @p n qubit string. */
    static PauliString single(std::size_t n, std::size_t qubit, char pauli);

    std::size_t numQubits() const { return x.size(); }

    bool xBit(std::size_t q) const { return x.get(q); }
    bool zBit(std::size_t q) const { return z.get(q); }
    void setX(std::size_t q, bool v) { x.set(q, v); }
    void setZ(std::size_t q, bool v) { z.set(q, v); }

    /** Phase exponent k in i^k (0..3). */
    int phase() const { return ph; }
    void setPhase(int k) { ph = ((k % 4) + 4) % 4; }

    /** Pauli letter on one qubit: 'I', 'X', 'Y', or 'Z'. */
    char letter(std::size_t q) const;
    /** Set the Pauli on one qubit by letter. */
    void setLetter(std::size_t q, char pauli);

    /** Number of non-identity sites. */
    std::size_t weight() const;
    /** True when this is the (possibly phased) identity. */
    bool isIdentity() const;

    /** True when the two strings commute. */
    bool commutesWith(const PauliString& other) const;

    /** Multiply in place (this := this * other), tracking phase. */
    PauliString& operator*=(const PauliString& other);
    PauliString operator*(const PauliString& other) const;

    /** Render like "+XIZY". */
    std::string toString() const;

    bool operator==(const PauliString& other) const = default;

    /** Direct access to the symplectic halves. */
    const BitVec& xVec() const { return x; }
    const BitVec& zVec() const { return z; }

  private:
    BitVec x;
    BitVec z;
    int ph = 0; // i^ph
};

} // namespace stab
} // namespace hetarch
