/**
 * @file
 * Clifford circuit intermediate representation with Pauli noise,
 * measurement, detector and observable annotations.
 *
 * This is the input language of both simulators (TableauSimulator,
 * FrameSimulator) and of the detector-error-model extractor.  The role
 * it plays in HetArch mirrors the role Stim circuits play in the paper:
 * standard-cell schedules are lowered to this IR, sampled under
 * circuit-level noise, and decoded.
 *
 * Detectors must be parities of measurements that are deterministic in
 * the absence of noise (the usual detector condition); the frame
 * sampler and DEM extraction rely on it, and
 * TableauSimulator::checkDetectorsDeterministic verifies it.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hetarch {
namespace stab {

/** Operation codes of the circuit IR. */
enum class OpCode : std::uint8_t
{
    H,          ///< Hadamard
    S,          ///< phase gate
    SDG,        ///< inverse phase gate
    X,          ///< Pauli X
    Y,          ///< Pauli Y
    Z,          ///< Pauli Z
    CX,         ///< controlled-X; targets in (control, target) pairs
    CZ,         ///< controlled-Z; targets in pairs
    SWAP,       ///< swap; targets in pairs
    M,          ///< Z-basis measurement, appends to the record
    R,          ///< reset to |0>
    MR,         ///< measure then reset
    X_ERROR,    ///< X with probability p on each target
    Z_ERROR,    ///< Z with probability p on each target
    PAULI1,     ///< Pauli channel (px, py, pz) on each target
    DEPOL1,     ///< single-qubit depolarizing(p) on each target
    DEPOL2,     ///< two-qubit depolarizing(p); targets in pairs
    DETECTOR,   ///< parity of referenced measurements (deterministic)
    OBSERVABLE, ///< logical observable accumulation
};

/** Mnemonic of an opcode, as emitted by Circuit::toString. */
const char* opCodeName(OpCode code);

/** One circuit operation. */
struct Op
{
    OpCode code;
    /** Qubit targets, or measurement-record indices for annotations. */
    std::vector<std::uint32_t> targets;
    /** Noise parameters (p, or px/py/pz). */
    std::vector<double> params;
    /** OBSERVABLE: which logical observable; DETECTOR: metadata tag. */
    std::uint32_t id = 0;
};

/**
 * A Clifford+noise circuit.  Built through the fluent helpers; qubits
 * are dense indices [0, numQubits).
 */
class Circuit
{
  public:
    explicit Circuit(std::size_t num_qubits = 0);

    std::size_t numQubits() const { return nq; }
    /** Grow the register if needed so that @p q is a valid qubit. */
    void ensureQubit(std::size_t q);

    /** Number of measurements appended so far. */
    std::size_t numMeasurements() const { return nMeas; }
    /** Number of detectors declared so far. */
    std::size_t numDetectors() const { return nDets; }
    /** One past the highest observable id used. */
    std::size_t numObservables() const { return nObs; }

    const std::vector<Op>& ops() const { return opList; }

    // --- unitaries ---------------------------------------------------
    void h(std::uint32_t q);
    void s(std::uint32_t q);
    void sdg(std::uint32_t q);
    void x(std::uint32_t q);
    void y(std::uint32_t q);
    void z(std::uint32_t q);
    void cx(std::uint32_t control, std::uint32_t target);
    void cz(std::uint32_t a, std::uint32_t b);
    void swap(std::uint32_t a, std::uint32_t b);

    // --- measurement / reset ------------------------------------------
    /** Measure in Z; returns the measurement-record index. */
    std::size_t measure(std::uint32_t q);
    void reset(std::uint32_t q);
    /** Measure-and-reset; returns the record index. */
    std::size_t measureReset(std::uint32_t q);

    // --- noise ---------------------------------------------------------
    void xError(std::uint32_t q, double p);
    void zError(std::uint32_t q, double p);
    void pauliChannel1(std::uint32_t q, double px, double py, double pz);
    void depolarize1(std::uint32_t q, double p);
    void depolarize2(std::uint32_t a, std::uint32_t b, double p);

    // --- annotations ----------------------------------------------------
    /**
     * Declare a detector as the parity of the given measurement-record
     * indices.  @p tag is free metadata (used by decoders to group
     * detectors into X/Z graphs).  Returns the detector index.
     */
    std::size_t detector(const std::vector<std::size_t>& meas_indices,
                         std::uint32_t tag = 0);

    /** Fold the given measurements into logical observable @p index. */
    void observableInclude(std::uint32_t index,
                           const std::vector<std::size_t>& meas_indices);

    /** Append another circuit (qubit indices shared). */
    void append(const Circuit& other);

    /**
     * Validating raw append: checks target arity (pair ops take an
     * even, stim-style target list and are split into canonical
     * two-target ops), param counts, probability ranges, and
     * measurement-record references, then dispatches to the typed
     * helpers.  Malformed ops are rejected with a clear diagnostic
     * (fatal), prefixed with @p context (e.g. "line 12: ") when given.
     * This is the one entry point for programmatic construction from
     * untrusted data (parsers, tools).
     */
    void appendOp(const Op& op, const std::string& context = "");

    /**
     * Unchecked reconstruction from raw ops: counters (measurements,
     * detectors, observables, tags) are rebuilt by scanning, but NO
     * validation is performed and the register is NOT grown to cover
     * the targets.  Escape hatch for tools and for lint tests that
     * need deliberately malformed circuits; everything else should use
     * the fluent helpers or appendOp.
     */
    static Circuit fromRawOps(std::size_t num_qubits, std::vector<Op> ops);

    /** Per-detector metadata tags, indexed by detector id. */
    const std::vector<std::uint32_t>& detectorTags() const { return detTags; }

    /** Count of operations, for cost reporting. */
    std::size_t size() const { return opList.size(); }

    /** Human-readable dump (one op per line). */
    std::string toString() const;

  private:
    void pushUnary(OpCode code, std::uint32_t q);
    void pushPair(OpCode code, std::uint32_t a, std::uint32_t b);

    std::size_t nq = 0;
    std::size_t nMeas = 0;
    std::size_t nDets = 0;
    std::size_t nObs = 0;
    std::vector<Op> opList;
    std::vector<std::uint32_t> detTags;
};

} // namespace stab
} // namespace hetarch
