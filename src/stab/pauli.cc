#include "stab/pauli.hh"

#include <bit>

#include "core/logging.hh"

namespace hetarch {
namespace stab {

BitVec::BitVec(std::size_t n)
    : nBits(n), words((n + 63) / 64, 0)
{
}

BitVec&
BitVec::operator^=(const BitVec& other)
{
    HETARCH_ASSERT(nBits == other.nBits, "BitVec length mismatch");
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] ^= other.words[i];
    return *this;
}

std::size_t
BitVec::popcount() const
{
    std::size_t n = 0;
    for (auto w : words)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

bool
BitVec::allZero() const
{
    for (auto w : words)
        if (w)
            return false;
    return true;
}

bool
BitVec::andParity(const BitVec& other) const
{
    HETARCH_ASSERT(nBits == other.nBits, "BitVec length mismatch");
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < words.size(); ++i)
        acc ^= words[i] & other.words[i];
    return std::popcount(acc) & 1;
}

PauliString::PauliString(std::size_t n)
    : x(n), z(n)
{
}

PauliString
PauliString::fromString(const std::string& text)
{
    std::size_t pos = 0;
    int phase = 0;
    if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
        if (text[pos] == '-')
            phase = 2;
        ++pos;
        if (pos < text.size() && text[pos] == 'i') {
            phase += 1;
            ++pos;
        }
    }
    PauliString p(text.size() - pos);
    for (std::size_t q = 0; pos < text.size(); ++pos, ++q)
        p.setLetter(q, text[pos]);
    p.setPhase(phase);
    return p;
}

PauliString
PauliString::single(std::size_t n, std::size_t qubit, char pauli)
{
    HETARCH_ASSERT(qubit < n, "qubit out of range");
    PauliString p(n);
    p.setLetter(qubit, pauli);
    return p;
}

char
PauliString::letter(std::size_t q) const
{
    const bool xb = x.get(q);
    const bool zb = z.get(q);
    if (xb && zb)
        return 'Y';
    if (xb)
        return 'X';
    if (zb)
        return 'Z';
    return 'I';
}

void
PauliString::setLetter(std::size_t q, char pauli)
{
    switch (pauli) {
      case 'I': x.set(q, false); z.set(q, false); break;
      case 'X': x.set(q, true);  z.set(q, false); break;
      case 'Y': x.set(q, true);  z.set(q, true);  break;
      case 'Z': x.set(q, false); z.set(q, true);  break;
      default: HETARCH_FATAL("invalid Pauli letter '", pauli, "'");
    }
}

std::size_t
PauliString::weight() const
{
    std::size_t w = 0;
    for (std::size_t i = 0; i < x.raw().size(); ++i) {
        w += static_cast<std::size_t>(
            std::popcount(x.raw()[i] | z.raw()[i]));
    }
    return w;
}

bool
PauliString::isIdentity() const
{
    return x.allZero() && z.allZero();
}

bool
PauliString::commutesWith(const PauliString& other) const
{
    // Symplectic product: parity of (x1.z2) + (z1.x2).
    return !(x.andParity(other.z) ^ z.andParity(other.x));
}

PauliString&
PauliString::operator*=(const PauliString& other)
{
    HETARCH_ASSERT(numQubits() == other.numQubits(),
                   "PauliString size mismatch");
    // Phase bookkeeping per qubit: multiplying single-qubit Paulis
    // P1 * P2 contributes a factor i^k; accumulate k over qubits.
    int extra = 0;
    for (std::size_t q = 0; q < numQubits(); ++q) {
        const bool x1 = x.get(q), z1 = z.get(q);
        const bool x2 = other.x.get(q), z2 = other.z.get(q);
        // Lookup of the phase exponent of P1*P2 relative to the
        // symplectic sum: i^g where g in {0,1,3} (mod 4).
        // Using the standard formula g = x1*z1*(z2 - x2) ... simpler
        // to enumerate.
        const int p1 = (x1 ? 1 : 0) | (z1 ? 2 : 0); // I=0 X=1 Z=2 Y=3
        const int p2 = (x2 ? 1 : 0) | (z2 ? 2 : 0);
        // table[p1][p2]: phase exponent of pauli(p1)*pauli(p2) as i^k
        // with pauli order I,X,Z,Y.
        // X*Z = -iY, Z*X = iY, X*Y = iZ, Y*X = -iZ, Z*Y = -iX, Y*Z = iX
        static const int table[4][4] = {
            {0, 0, 0, 0},  // I*
            {0, 0, 3, 1},  // X*: X*Z=-i(Y) -> 3, X*Y=i(Z) -> 1
            {0, 1, 0, 3},  // Z*: Z*X=i(Y) -> 1, Z*Y=-i(X) -> 3
            {0, 3, 1, 0},  // Y*: Y*X=-i(Z) -> 3, Y*Z=i(X) -> 1
        };
        extra += table[p1][p2];
    }
    x ^= other.x;
    z ^= other.z;
    ph = (ph + other.ph + extra) % 4;
    return *this;
}

PauliString
PauliString::operator*(const PauliString& other) const
{
    PauliString out = *this;
    out *= other;
    return out;
}

std::string
PauliString::toString() const
{
    std::string out;
    switch (ph) {
      case 0: out = "+"; break;
      case 1: out = "+i"; break;
      case 2: out = "-"; break;
      case 3: out = "-i"; break;
    }
    for (std::size_t q = 0; q < numQubits(); ++q)
        out += letter(q);
    return out;
}

} // namespace stab
} // namespace hetarch
