#include "stab/frame_program.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "core/logging.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace stab {

namespace {

// Telemetry.  Compiles happen once per (circuit, call site) — via the
// DecoderCache exactly once per cached setup — so the count is a
// function of the workload, not of scheduling.
obs::Counter& cProgramCompiles = obs::counter("stab.sampler.program_compiles");

/**
 * Interpret ops in [begin, end) over the frame words, delivering each
 * measurement word through @p record.  Shared by the whole-batch and
 * sliced entry points so both consume the RNG stream identically — the
 * op order, the draw sites and the pre-resolved probabilities are the
 * same instructions either way.
 */
template <typename MeasSink>
std::uint64_t
interpretOps(const FrameOp* op, const FrameOp* end, std::uint64_t* x,
             std::uint64_t* z, int depol2_retries, Rng& rng,
             MeasSink&& record)
{
    std::uint64_t flips = 0;
    for (; op != end; ++op) {
        switch (op->code) {
          case FrameOpCode::H:
            std::swap(x[op->a], z[op->a]);
            break;
          case FrameOpCode::SGate:
            z[op->a] ^= x[op->a];
            break;
          case FrameOpCode::CX:
            x[op->b] ^= x[op->a];
            z[op->a] ^= z[op->b];
            break;
          case FrameOpCode::CZ:
            z[op->a] ^= x[op->b];
            z[op->b] ^= x[op->a];
            break;
          case FrameOpCode::Swap:
            std::swap(x[op->a], x[op->b]);
            std::swap(z[op->a], z[op->b]);
            break;
          case FrameOpCode::M:
            record(x[op->a]);
            // Measurement collapse randomizes the frame phase.
            z[op->a] ^= rng();
            break;
          case FrameOpCode::R:
            x[op->a] = 0;
            z[op->a] = 0;
            break;
          case FrameOpCode::MR:
            record(x[op->a]);
            x[op->a] = 0;
            z[op->a] = 0;
            break;
          case FrameOpCode::XError: {
            const std::uint64_t err = rng.biasedWord(op->p0);
            x[op->a] ^= err;
            flips += std::popcount(err);
            break;
          }
          case FrameOpCode::ZError: {
            const std::uint64_t err = rng.biasedWord(op->p0);
            z[op->a] ^= err;
            flips += std::popcount(err);
            break;
          }
          case FrameOpCode::Pauli1: {
            const std::uint64_t err = rng.biasedWord(op->p0);
            const std::uint64_t pick_x = rng.biasedWord(op->p1);
            const std::uint64_t pick_y = rng.biasedWord(op->p2);
            const std::uint64_t mx = err & pick_x;
            const std::uint64_t my = err & ~pick_x & pick_y;
            const std::uint64_t mz = err & ~pick_x & ~pick_y;
            x[op->a] ^= mx | my;
            z[op->a] ^= mz | my;
            flips += std::popcount(err);
            break;
          }
          case FrameOpCode::Depol1: {
            const std::uint64_t err = rng.biasedWord(op->p0);
            const std::uint64_t pick_x = rng.biasedWord(1.0 / 3.0);
            const std::uint64_t pick_y = rng.biasedWord(0.5);
            const std::uint64_t mx = err & pick_x;
            const std::uint64_t my = err & ~pick_x & pick_y;
            const std::uint64_t mz = err & ~pick_x & ~pick_y;
            x[op->a] ^= mx | my;
            z[op->a] ^= mz | my;
            flips += std::popcount(err);
            break;
          }
          case FrameOpCode::Depol2: {
            const std::uint64_t err = rng.biasedWord(op->p0);
            if (!err)
                break;
            // Uniform non-identity two-qubit Pauli per erring lane:
            // draw 4 random bits and reject the all-zero combination.
            std::uint64_t v0 = rng(), v1 = rng(), v2 = rng(), v3 = rng();
            for (int tries = 0; tries < depol2_retries; ++tries) {
                const std::uint64_t zero = err & ~(v0 | v1 | v2 | v3);
                if (!zero)
                    break;
                const std::uint64_t r0 = rng(), r1 = rng(), r2 = rng(),
                                    r3 = rng();
                v0 = (v0 & ~zero) | (r0 & zero);
                v1 = (v1 & ~zero) | (r1 & zero);
                v2 = (v2 & ~zero) | (r2 & zero);
                v3 = (v3 & ~zero) | (r3 & zero);
            }
            // Any lane still all-zero after the retries (prob 16^-12
            // at the default budget) is forced to X on qubit a.
            const std::uint64_t still = err & ~(v0 | v1 | v2 | v3);
            v0 |= still;
            x[op->a] ^= err & v0;
            z[op->a] ^= err & v1;
            x[op->b] ^= err & v2;
            z[op->b] ^= err & v3;
            flips += std::popcount(err);
            break;
          }
        }
    }
    return flips;
}

} // namespace

std::shared_ptr<const FrameProgram>
FrameProgram::compile(const Circuit& circuit, int depol2_retries)
{
    auto prog = std::make_shared<FrameProgram>();
    prog->nQubits = circuit.numQubits();
    prog->nMeas = circuit.numMeasurements();
    prog->nDets = circuit.numDetectors();
    prog->nObs = circuit.numObservables();
    prog->depol2Retries = depol2_retries;

    // Observable includes are concatenated per id; XOR-folding the
    // combined list equals XOR-accumulating the individual includes.
    std::vector<std::vector<std::uint32_t>> obs_meas(prog->nObs);

    // Slice tracking: a boundary is inserted just before a qubit's
    // second measurement since the previous boundary, so one slice
    // covers one measurement "round" (each detector and record belongs
    // to exactly one slice; gate ops of the next round may spill into
    // the previous slice, which only affects execution granularity).
    constexpr std::uint32_t kNever = 0xffffffffu;
    std::vector<std::uint32_t> meas_slice(prog->nQubits, kNever);
    std::uint32_t cur_slice = 0;
    std::uint32_t meas_count = 0;
    FrameSliceInfo open; // ranges accumulate; begin fields are current
    const auto close_slice = [&] {
        open.opEnd = static_cast<std::uint32_t>(prog->stream.size());
        open.measEnd = meas_count;
        open.detEnd =
            static_cast<std::uint32_t>(prog->detOffsets.size() - 1);
        prog->slices.push_back(open);
        open.opBegin = open.opEnd;
        open.measBegin = open.measEnd;
        open.detBegin = open.detEnd;
        ++cur_slice;
    };

    prog->detOffsets.push_back(0);
    for (const auto& op : circuit.ops()) {
        FrameOp f;
        f.a = op.targets.empty() ? 0 : op.targets[0];
        f.b = op.targets.size() > 1 ? op.targets[1] : 0;
        switch (op.code) {
          case OpCode::H:
            f.code = FrameOpCode::H;
            break;
          case OpCode::S:
          case OpCode::SDG:
            f.code = FrameOpCode::SGate;
            break;
          case OpCode::X:
          case OpCode::Y:
          case OpCode::Z:
            continue; // Paulis commute with the frame; no rng draw
          case OpCode::CX:
            f.code = FrameOpCode::CX;
            break;
          case OpCode::CZ:
            f.code = FrameOpCode::CZ;
            break;
          case OpCode::SWAP:
            f.code = FrameOpCode::Swap;
            break;
          case OpCode::M:
          case OpCode::MR:
            f.code = op.code == OpCode::M ? FrameOpCode::M
                                          : FrameOpCode::MR;
            if (meas_slice[f.a] == cur_slice)
                close_slice();
            meas_slice[f.a] = cur_slice;
            ++meas_count;
            break;
          case OpCode::R:
            f.code = FrameOpCode::R;
            break;
          case OpCode::X_ERROR:
            f.code = FrameOpCode::XError;
            f.p0 = op.params[0];
            break;
          case OpCode::Z_ERROR:
            f.code = FrameOpCode::ZError;
            f.p0 = op.params[0];
            break;
          case OpCode::PAULI1: {
            const double px = op.params[0];
            const double py = op.params[1];
            const double pz = op.params[2];
            const double ptot = px + py + pz;
            if (ptot <= 0.0)
                continue; // interpreter breaks before any rng draw
            const double rest = py + pz;
            f.code = FrameOpCode::Pauli1;
            f.p0 = ptot;
            f.p1 = px / ptot;
            f.p2 = rest > 0.0 ? py / rest : 0.0;
            break;
          }
          case OpCode::DEPOL1:
            f.code = FrameOpCode::Depol1;
            f.p0 = op.params[0];
            break;
          case OpCode::DEPOL2:
            f.code = FrameOpCode::Depol2;
            f.p0 = op.params[0];
            break;
          case OpCode::DETECTOR:
            for (auto m : op.targets)
                prog->detMeas.push_back(m);
            prog->detOffsets.push_back(
                static_cast<std::uint32_t>(prog->detMeas.size()));
            continue;
          case OpCode::OBSERVABLE:
            for (auto m : op.targets)
                obs_meas[op.id].push_back(m);
            continue;
        }
        prog->stream.push_back(f);
    }
    HETARCH_ASSERT(prog->detOffsets.size() == prog->nDets + 1,
                   "detector count mismatch while compiling");

    prog->obsOffsets.push_back(0);
    for (auto& meas : obs_meas) {
        prog->obsMeas.insert(prog->obsMeas.end(), meas.begin(),
                             meas.end());
        prog->obsOffsets.push_back(
            static_cast<std::uint32_t>(prog->obsMeas.size()));
    }

    // Close the tail slice; even an annotation-only or empty circuit
    // gets one slice so streaming callers never special-case.
    close_slice();
    HETARCH_ASSERT(prog->slices.back().measEnd == prog->nMeas,
                   "measurement count mismatch while slicing");

    // Assign each observable include to the slice that records its
    // measurement, so streaming folds can retire observable
    // contributions as soon as a slice completes.
    const auto slice_of = [&](std::uint32_t m) {
        std::size_t lo = 0, hi = prog->slices.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (m < prog->slices[mid].measEnd)
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo;
    };
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        by_slice(prog->slices.size());
    for (std::size_t k = 0; k < prog->nObs; ++k)
        for (const auto* m = prog->obsMeasBegin(k);
             m != prog->obsMeasEnd(k); ++m)
            by_slice[slice_of(*m)].emplace_back(
                static_cast<std::uint32_t>(k), *m);
    for (std::size_t s = 0; s < prog->slices.size(); ++s) {
        prog->slices[s].obsBegin =
            static_cast<std::uint32_t>(prog->sliceObsId.size());
        for (const auto& [k, m] : by_slice[s]) {
            prog->sliceObsId.push_back(k);
            prog->sliceObsMeas.push_back(m);
        }
        prog->slices[s].obsEnd =
            static_cast<std::uint32_t>(prog->sliceObsId.size());
    }

    // Measurement lookback: how far behind its own last record any
    // slice's folds reach.  The streaming ring must keep a record
    // alive from when it is written until the slice that folds it
    // finishes, i.e. hold measEnd(s) - m records.
    std::size_t look = 1;
    for (const auto& s : prog->slices) {
        for (std::size_t d = s.detBegin; d < s.detEnd; ++d)
            for (const auto* m = prog->detMeasBegin(d);
                 m != prog->detMeasEnd(d); ++m)
                look = std::max<std::size_t>(look, s.measEnd - *m);
        for (std::size_t e = s.obsBegin; e < s.obsEnd; ++e)
            look = std::max<std::size_t>(
                look, s.measEnd - prog->sliceObsMeas[e]);
    }
    prog->lookback = look;
    prog->ringCapacity = std::bit_ceil(look);

    cProgramCompiles.add();
    return prog;
}

std::uint64_t
FrameProgram::runBatch(FrameScratch& scratch, Rng& rng) const
{
    scratch.x.assign(nQubits, 0);
    scratch.z.assign(nQubits, 0);
    scratch.meas.clear();
    scratch.meas.reserve(nMeas);
    return interpretOps(stream.data(), stream.data() + stream.size(),
                        scratch.x.data(), scratch.z.data(), depol2Retries,
                        rng,
                        [&](std::uint64_t w) { scratch.meas.push_back(w); });
}

void
FrameProgram::beginStream(FrameStreamScratch& scratch) const
{
    scratch.x.assign(nQubits, 0);
    scratch.z.assign(nQubits, 0);
    scratch.measRing.assign(ringCapacity, 0);
    scratch.measCursor = 0;
}

std::uint64_t
FrameProgram::runSlice(std::size_t s, FrameStreamScratch& scratch,
                       Rng& rng) const
{
    const auto& info = slices[s];
    HETARCH_DEBUG_ASSERT(scratch.measCursor == info.measBegin,
                         "slices must run in order (cursor ",
                         scratch.measCursor, ", slice starts at ",
                         info.measBegin, ")");
    const std::size_t mask = ringCapacity - 1;
    auto* ring = scratch.measRing.data();
    return interpretOps(stream.data() + info.opBegin,
                        stream.data() + info.opEnd, scratch.x.data(),
                        scratch.z.data(), depol2Retries, rng,
                        [&](std::uint64_t w) {
                            ring[scratch.measCursor++ & mask] = w;
                        });
}

void
FrameProgram::foldAnnotations(const FrameScratch& scratch,
                              std::uint64_t lane_mask,
                              std::uint64_t* det_words,
                              std::size_t det_stride,
                              std::uint64_t* obs_words,
                              std::size_t obs_stride) const
{
    const auto* meas = scratch.meas.data();
    for (std::size_t d = 0; d < nDets; ++d) {
        std::uint64_t word = 0;
        for (const auto* m = detMeasBegin(d); m != detMeasEnd(d); ++m)
            word ^= meas[*m];
        det_words[d * det_stride] = word & lane_mask;
    }
    for (std::size_t k = 0; k < nObs; ++k) {
        std::uint64_t word = 0;
        for (const auto* m = obsMeasBegin(k); m != obsMeasEnd(k); ++m)
            word ^= meas[*m];
        obs_words[k * obs_stride] = word & lane_mask;
    }
}

void
FrameProgram::foldSlice(std::size_t s, const FrameStreamScratch& scratch,
                        std::uint64_t lane_mask, std::uint64_t* det_words,
                        std::size_t det_stride, std::uint64_t* obs_words,
                        std::size_t obs_stride) const
{
    const auto& info = slices[s];
    HETARCH_DEBUG_ASSERT(scratch.measCursor == info.measEnd,
                         "foldSlice(", s, ") before its runSlice");
    const std::size_t mask = ringCapacity - 1;
    const auto* ring = scratch.measRing.data();
    for (std::size_t d = info.detBegin; d < info.detEnd; ++d) {
        std::uint64_t word = 0;
        for (const auto* m = detMeasBegin(d); m != detMeasEnd(d); ++m)
            word ^= ring[*m & mask];
        det_words[(d - info.detBegin) * det_stride] = word & lane_mask;
    }
    for (std::size_t e = info.obsBegin; e < info.obsEnd; ++e)
        obs_words[sliceObsId[e] * obs_stride] ^=
            ring[sliceObsMeas[e] & mask] & lane_mask;
}

} // namespace stab
} // namespace hetarch
