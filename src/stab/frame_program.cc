#include "stab/frame_program.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <utility>

#include "core/logging.hh"
#include "core/simd.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace stab {

namespace {

// Telemetry.  Compiles happen once per (circuit, call site) — via the
// DecoderCache exactly once per cached setup — so the count is a
// function of the workload, not of scheduling.
obs::Counter& cProgramCompiles = obs::counter("stab.sampler.program_compiles");

/** Noise-tape slots an op consumes in block execution. */
std::uint32_t
tapeSlotsOf(FrameOpCode code)
{
    switch (code) {
      case FrameOpCode::M:
        return 1; // the collapse word
      case FrameOpCode::XError:
      case FrameOpCode::ZError:
        return 1; // the error mask
      case FrameOpCode::Pauli1:
      case FrameOpCode::Depol1:
        return 2; // resolved X-flip and Z-flip masks
      case FrameOpCode::Depol2:
        return 4; // err & v0..v3 (X_a, Z_a, X_b, Z_b masks)
      default:
        return 0;
    }
}

/**
 * Interpret ops in [begin, end) over the frame words, delivering each
 * measurement word through @p record.  Shared by the whole-batch and
 * sliced entry points so both consume the RNG stream identically — the
 * op order, the draw sites and the pre-resolved probabilities are the
 * same instructions either way.
 */
template <typename MeasSink>
std::uint64_t
interpretOps(const FrameOp* op, const FrameOp* end, std::uint64_t* x,
             std::uint64_t* z, int depol2_retries, Rng& rng,
             MeasSink&& record)
{
    std::uint64_t flips = 0;
    for (; op != end; ++op) {
        switch (op->code) {
          case FrameOpCode::H:
            std::swap(x[op->a], z[op->a]);
            break;
          case FrameOpCode::SGate:
            z[op->a] ^= x[op->a];
            break;
          case FrameOpCode::CX:
            x[op->b] ^= x[op->a];
            z[op->a] ^= z[op->b];
            break;
          case FrameOpCode::CZ:
            z[op->a] ^= x[op->b];
            z[op->b] ^= x[op->a];
            break;
          case FrameOpCode::Swap:
            std::swap(x[op->a], x[op->b]);
            std::swap(z[op->a], z[op->b]);
            break;
          case FrameOpCode::M:
            record(x[op->a]);
            // Measurement collapse randomizes the frame phase.
            z[op->a] ^= rng();
            break;
          case FrameOpCode::R:
            x[op->a] = 0;
            z[op->a] = 0;
            break;
          case FrameOpCode::MR:
            record(x[op->a]);
            x[op->a] = 0;
            z[op->a] = 0;
            break;
          case FrameOpCode::XError: {
            const std::uint64_t err = rng.biasedWord(op->p0);
            x[op->a] ^= err;
            flips += simd::popcountWord(err);
            break;
          }
          case FrameOpCode::ZError: {
            const std::uint64_t err = rng.biasedWord(op->p0);
            z[op->a] ^= err;
            flips += simd::popcountWord(err);
            break;
          }
          case FrameOpCode::Pauli1: {
            const std::uint64_t err = rng.biasedWord(op->p0);
            const std::uint64_t pick_x = rng.biasedWord(op->p1);
            const std::uint64_t pick_y = rng.biasedWord(op->p2);
            const std::uint64_t mx = err & pick_x;
            const std::uint64_t my = err & ~pick_x & pick_y;
            const std::uint64_t mz = err & ~pick_x & ~pick_y;
            x[op->a] ^= mx | my;
            z[op->a] ^= mz | my;
            flips += simd::popcountWord(err);
            break;
          }
          case FrameOpCode::Depol1: {
            const std::uint64_t err = rng.biasedWord(op->p0);
            const std::uint64_t pick_x = rng.biasedWord(1.0 / 3.0);
            const std::uint64_t pick_y = rng.biasedWord(0.5);
            const std::uint64_t mx = err & pick_x;
            const std::uint64_t my = err & ~pick_x & pick_y;
            const std::uint64_t mz = err & ~pick_x & ~pick_y;
            x[op->a] ^= mx | my;
            z[op->a] ^= mz | my;
            flips += simd::popcountWord(err);
            break;
          }
          case FrameOpCode::Depol2: {
            const std::uint64_t err = rng.biasedWord(op->p0);
            if (!err)
                break;
            // Uniform non-identity two-qubit Pauli per erring lane:
            // draw 4 random bits and reject the all-zero combination.
            std::uint64_t v0 = rng(), v1 = rng(), v2 = rng(), v3 = rng();
            for (int tries = 0; tries < depol2_retries; ++tries) {
                const std::uint64_t zero = err & ~(v0 | v1 | v2 | v3);
                if (!zero)
                    break;
                const std::uint64_t r0 = rng(), r1 = rng(), r2 = rng(),
                                    r3 = rng();
                v0 = (v0 & ~zero) | (r0 & zero);
                v1 = (v1 & ~zero) | (r1 & zero);
                v2 = (v2 & ~zero) | (r2 & zero);
                v3 = (v3 & ~zero) | (r3 & zero);
            }
            // Any lane still all-zero after the retries (prob 16^-12
            // at the default budget) is forced to X on qubit a.
            const std::uint64_t still = err & ~(v0 | v1 | v2 | v3);
            v0 |= still;
            x[op->a] ^= err & v0;
            z[op->a] ^= err & v1;
            x[op->b] ^= err & v2;
            z[op->b] ^= err & v3;
            flips += simd::popcountWord(err);
            break;
          }
        }
    }
    return flips;
}

} // namespace

std::shared_ptr<const FrameProgram>
FrameProgram::compile(const Circuit& circuit, int depol2_retries)
{
    auto prog = std::make_shared<FrameProgram>();
    prog->nQubits = circuit.numQubits();
    prog->nMeas = circuit.numMeasurements();
    prog->nDets = circuit.numDetectors();
    prog->nObs = circuit.numObservables();
    prog->depol2Retries = depol2_retries;

    // Observable includes are concatenated per id; XOR-folding the
    // combined list equals XOR-accumulating the individual includes.
    std::vector<std::vector<std::uint32_t>> obs_meas(prog->nObs);

    // Slice tracking: a boundary is inserted just before a qubit's
    // second measurement since the previous boundary, so one slice
    // covers one measurement "round" (each detector and record belongs
    // to exactly one slice; gate ops of the next round may spill into
    // the previous slice, which only affects execution granularity).
    constexpr std::uint32_t kNever = 0xffffffffu;
    std::vector<std::uint32_t> meas_slice(prog->nQubits, kNever);
    std::uint32_t cur_slice = 0;
    std::uint32_t meas_count = 0;
    FrameSliceInfo open; // ranges accumulate; begin fields are current
    const auto close_slice = [&] {
        open.opEnd = static_cast<std::uint32_t>(prog->stream.size());
        open.measEnd = meas_count;
        open.detEnd =
            static_cast<std::uint32_t>(prog->detOffsets.size() - 1);
        prog->slices.push_back(open);
        open.opBegin = open.opEnd;
        open.measBegin = open.measEnd;
        open.detBegin = open.detEnd;
        ++cur_slice;
    };

    prog->detOffsets.push_back(0);
    for (const auto& op : circuit.ops()) {
        FrameOp f;
        f.a = op.targets.empty() ? 0 : op.targets[0];
        f.b = op.targets.size() > 1 ? op.targets[1] : 0;
        switch (op.code) {
          case OpCode::H:
            f.code = FrameOpCode::H;
            break;
          case OpCode::S:
          case OpCode::SDG:
            f.code = FrameOpCode::SGate;
            break;
          case OpCode::X:
          case OpCode::Y:
          case OpCode::Z:
            continue; // Paulis commute with the frame; no rng draw
          case OpCode::CX:
            f.code = FrameOpCode::CX;
            break;
          case OpCode::CZ:
            f.code = FrameOpCode::CZ;
            break;
          case OpCode::SWAP:
            f.code = FrameOpCode::Swap;
            break;
          case OpCode::M:
          case OpCode::MR:
            f.code = op.code == OpCode::M ? FrameOpCode::M
                                          : FrameOpCode::MR;
            if (meas_slice[f.a] == cur_slice)
                close_slice();
            meas_slice[f.a] = cur_slice;
            ++meas_count;
            break;
          case OpCode::R:
            f.code = FrameOpCode::R;
            break;
          case OpCode::X_ERROR:
            f.code = FrameOpCode::XError;
            f.p0 = op.params[0];
            break;
          case OpCode::Z_ERROR:
            f.code = FrameOpCode::ZError;
            f.p0 = op.params[0];
            break;
          case OpCode::PAULI1: {
            const double px = op.params[0];
            const double py = op.params[1];
            const double pz = op.params[2];
            const double ptot = px + py + pz;
            if (ptot <= 0.0)
                continue; // interpreter breaks before any rng draw
            const double rest = py + pz;
            f.code = FrameOpCode::Pauli1;
            f.p0 = ptot;
            f.p1 = px / ptot;
            f.p2 = rest > 0.0 ? py / rest : 0.0;
            break;
          }
          case OpCode::DEPOL1:
            f.code = FrameOpCode::Depol1;
            f.p0 = op.params[0];
            break;
          case OpCode::DEPOL2:
            f.code = FrameOpCode::Depol2;
            f.p0 = op.params[0];
            break;
          case OpCode::DETECTOR:
            for (auto m : op.targets)
                prog->detMeas.push_back(m);
            prog->detOffsets.push_back(
                static_cast<std::uint32_t>(prog->detMeas.size()));
            continue;
          case OpCode::OBSERVABLE:
            for (auto m : op.targets)
                obs_meas[op.id].push_back(m);
            continue;
        }
        prog->stream.push_back(f);
    }
    HETARCH_ASSERT(prog->detOffsets.size() == prog->nDets + 1,
                   "detector count mismatch while compiling");

    prog->obsOffsets.push_back(0);
    for (auto& meas : obs_meas) {
        prog->obsMeas.insert(prog->obsMeas.end(), meas.begin(),
                             meas.end());
        prog->obsOffsets.push_back(
            static_cast<std::uint32_t>(prog->obsMeas.size()));
    }

    // Close the tail slice; even an annotation-only or empty circuit
    // gets one slice so streaming callers never special-case.
    close_slice();
    HETARCH_ASSERT(prog->slices.back().measEnd == prog->nMeas,
                   "measurement count mismatch while slicing");

    // Assign each observable include to the slice that records its
    // measurement, so streaming folds can retire observable
    // contributions as soon as a slice completes.
    const auto slice_of = [&](std::uint32_t m) {
        std::size_t lo = 0, hi = prog->slices.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (m < prog->slices[mid].measEnd)
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo;
    };
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        by_slice(prog->slices.size());
    for (std::size_t k = 0; k < prog->nObs; ++k)
        for (const auto* m = prog->obsMeasBegin(k);
             m != prog->obsMeasEnd(k); ++m)
            by_slice[slice_of(*m)].emplace_back(
                static_cast<std::uint32_t>(k), *m);
    for (std::size_t s = 0; s < prog->slices.size(); ++s) {
        prog->slices[s].obsBegin =
            static_cast<std::uint32_t>(prog->sliceObsId.size());
        for (const auto& [k, m] : by_slice[s]) {
            prog->sliceObsId.push_back(k);
            prog->sliceObsMeas.push_back(m);
        }
        prog->slices[s].obsEnd =
            static_cast<std::uint32_t>(prog->sliceObsId.size());
    }

    // Measurement lookback: how far behind its own last record any
    // slice's folds reach.  The streaming ring must keep a record
    // alive from when it is written until the slice that folds it
    // finishes, i.e. hold measEnd(s) - m records.
    std::size_t look = 1;
    for (const auto& s : prog->slices) {
        for (std::size_t d = s.detBegin; d < s.detEnd; ++d)
            for (const auto* m = prog->detMeasBegin(d);
                 m != prog->detMeasEnd(d); ++m)
                look = std::max<std::size_t>(look, s.measEnd - *m);
        for (std::size_t e = s.obsBegin; e < s.obsEnd; ++e)
            look = std::max<std::size_t>(
                look, s.measEnd - prog->sliceObsMeas[e]);
    }
    prog->lookback = look;
    prog->ringCapacity = std::bit_ceil(look);

    // Noise-tape layout for block execution: assign every
    // RNG-consuming op a contiguous slot range in stream order (the
    // resolution order), and keep a dense copy of just those ops so
    // the per-word resolution pass never dispatches pure Cliffords.
    std::uint32_t slot = 0;
    for (auto& f : prog->stream) {
        const std::uint32_t slots = tapeSlotsOf(f.code);
        if (slots == 0)
            continue;
        f.tape = slot;
        slot += slots;
        prog->rngOps.push_back(f);
    }
    prog->nTapeSlots = slot;

    cProgramCompiles.add();
    return prog;
}

std::uint64_t
FrameProgram::runBatch(FrameScratch& scratch, Rng& rng) const
{
    scratch.x.assign(nQubits, 0);
    scratch.z.assign(nQubits, 0);
    scratch.meas.clear();
    scratch.meas.reserve(nMeas);
    return interpretOps(stream.data(), stream.data() + stream.size(),
                        scratch.x.data(), scratch.z.data(), depol2Retries,
                        rng,
                        [&](std::uint64_t w) { scratch.meas.push_back(w); });
}

std::uint64_t
FrameProgram::resolveNoiseTape(FrameBlockScratch& scratch,
                               std::size_t words, Rng& rng) const
{
    HETARCH_ASSERT(words >= 1 && words <= kMaxFrameBlockWords,
                   "block width ", words, " out of range");
    scratch.words = words;
    scratch.x.assign(nQubits * words, 0);
    scratch.z.assign(nQubits * words, 0);
    scratch.meas.assign(nMeas * words, 0);
    scratch.tape.resize(nTapeSlots * words);
    scratch.fold.resize(words);
    if (words > 1)
        scratch.stage.resize(nTapeSlots * words);

    // Word-by-word, op-by-op: exactly the draw order W sequential
    // runBatch calls consume.  No frame state is read — every branch
    // below (including the DEPOL2 retry loop) depends only on drawn
    // values, which is what makes the two-pass split sound.
    //
    // Each batch resolves into a batch-major staging row (contiguous
    // writes); a single blocked transpose below produces the
    // slot-major layout replayBlock consumes.  Writing slot-major
    // directly would stride the tape by `words` words per slot — one
    // cache line per write at width 8 — multiplying resolution write
    // traffic by the width.  At width 1 the two layouts coincide, so
    // the tape is written in place.
    std::uint64_t flips = 0;
    auto* tape = scratch.tape.data();
    for (std::size_t w = 0; w < words; ++w) {
        auto* row = words == 1 ? tape
                               : scratch.stage.data() + w * nTapeSlots;
        for (const auto& op : rngOps) {
            auto* slot = row + op.tape;
            switch (op.code) {
              case FrameOpCode::M:
                slot[0] = rng();
                break;
              case FrameOpCode::XError:
              case FrameOpCode::ZError: {
                const std::uint64_t err = rng.biasedWord(op.p0);
                slot[0] = err;
                flips += simd::popcountWord(err);
                break;
              }
              case FrameOpCode::Pauli1:
              case FrameOpCode::Depol1: {
                const bool depol = op.code == FrameOpCode::Depol1;
                const std::uint64_t err = rng.biasedWord(op.p0);
                const std::uint64_t pick_x =
                    rng.biasedWord(depol ? 1.0 / 3.0 : op.p1);
                const std::uint64_t pick_y =
                    rng.biasedWord(depol ? 0.5 : op.p2);
                const std::uint64_t mx = err & pick_x;
                const std::uint64_t my = err & ~pick_x & pick_y;
                const std::uint64_t mz = err & ~pick_x & ~pick_y;
                slot[0] = mx | my;
                slot[1] = mz | my;
                flips += simd::popcountWord(err);
                break;
              }
              case FrameOpCode::Depol2: {
                const std::uint64_t err = rng.biasedWord(op.p0);
                if (!err) {
                    // The interpreter breaks before any v-draw; zero
                    // tape rows make the replay XORs no-ops.
                    slot[0] = slot[1] = slot[2] = slot[3] = 0;
                    break;
                }
                std::uint64_t v0 = rng(), v1 = rng(), v2 = rng(),
                              v3 = rng();
                for (int tries = 0; tries < depol2Retries; ++tries) {
                    const std::uint64_t zero =
                        err & ~(v0 | v1 | v2 | v3);
                    if (!zero)
                        break;
                    const std::uint64_t r0 = rng(), r1 = rng(),
                                        r2 = rng(), r3 = rng();
                    v0 = (v0 & ~zero) | (r0 & zero);
                    v1 = (v1 & ~zero) | (r1 & zero);
                    v2 = (v2 & ~zero) | (r2 & zero);
                    v3 = (v3 & ~zero) | (r3 & zero);
                }
                const std::uint64_t still = err & ~(v0 | v1 | v2 | v3);
                v0 |= still;
                slot[0] = err & v0;
                slot[1] = err & v1;
                slot[2] = err & v2;
                slot[3] = err & v3;
                flips += simd::popcountWord(err);
                break;
              }
              default:
                break; // zero-slot ops never land in rngOps
            }
        }
    }

    // stage[w * slots + s] -> tape[s * words + w].  Slot-outer order
    // keeps the tape writes contiguous; the reads advance `words`
    // sequential streams, one per batch row.
    if (words > 1) {
        const auto* stage = scratch.stage.data();
        for (std::size_t s = 0; s < nTapeSlots; ++s)
            for (std::size_t w = 0; w < words; ++w)
                tape[s * words + w] = stage[w * nTapeSlots + s];
    }
    return flips;
}

void
FrameProgram::replayBlock(FrameBlockScratch& scratch) const
{
    const std::size_t w = scratch.words;
    HETARCH_DEBUG_ASSERT(w >= 1 && scratch.x.size() == nQubits * w,
                         "replayBlock on an unprepared scratch");
    auto* x = scratch.x.data();
    auto* z = scratch.z.data();
    auto* meas = scratch.meas.data();
    const auto* tape = scratch.tape.data();
    std::size_t m = 0;
    for (const auto& op : stream) {
        auto* xa = x + op.a * w;
        auto* za = z + op.a * w;
        switch (op.code) {
          case FrameOpCode::H:
            simd::swapWords(xa, za, w);
            break;
          case FrameOpCode::SGate:
            simd::xorWords(za, xa, w);
            break;
          case FrameOpCode::CX:
            simd::xorWords(x + op.b * w, xa, w);
            simd::xorWords(za, z + op.b * w, w);
            break;
          case FrameOpCode::CZ:
            simd::xorWords(za, x + op.b * w, w);
            simd::xorWords(z + op.b * w, xa, w);
            break;
          case FrameOpCode::Swap:
            simd::swapWords(xa, x + op.b * w, w);
            simd::swapWords(za, z + op.b * w, w);
            break;
          case FrameOpCode::M:
            simd::copyWords(meas + m * w, xa, w);
            m += 1;
            simd::xorWords(za, tape + op.tape * w, w);
            break;
          case FrameOpCode::R:
            simd::zeroWords(xa, w);
            simd::zeroWords(za, w);
            break;
          case FrameOpCode::MR:
            simd::copyWords(meas + m * w, xa, w);
            m += 1;
            simd::zeroWords(xa, w);
            simd::zeroWords(za, w);
            break;
          case FrameOpCode::XError:
            simd::xorWords(xa, tape + op.tape * w, w);
            break;
          case FrameOpCode::ZError:
            simd::xorWords(za, tape + op.tape * w, w);
            break;
          case FrameOpCode::Pauli1:
          case FrameOpCode::Depol1:
            simd::xorWords(xa, tape + op.tape * w, w);
            simd::xorWords(za, tape + (op.tape + 1) * w, w);
            break;
          case FrameOpCode::Depol2:
            simd::xorWords(xa, tape + op.tape * w, w);
            simd::xorWords(za, tape + (op.tape + 1) * w, w);
            simd::xorWords(x + op.b * w, tape + (op.tape + 2) * w, w);
            simd::xorWords(z + op.b * w, tape + (op.tape + 3) * w, w);
            break;
        }
    }
    HETARCH_DEBUG_ASSERT(m == nMeas, "measurement count mismatch in "
                                     "block replay");
}

std::uint64_t
FrameProgram::runBatchBlock(FrameBlockScratch& scratch, std::size_t words,
                            Rng& rng) const
{
    const std::uint64_t flips = resolveNoiseTape(scratch, words, rng);
    replayBlock(scratch);
    return flips;
}

void
FrameProgram::foldAnnotationsBlock(FrameBlockScratch& scratch,
                                   std::uint64_t last_word_mask,
                                   std::uint64_t* det_words,
                                   std::size_t det_stride,
                                   std::uint64_t* obs_words,
                                   std::size_t obs_stride) const
{
    const std::size_t w = scratch.words;
    const auto* meas = scratch.meas.data();
    auto* acc = scratch.fold.data();
    const auto fold_row = [&](const std::uint32_t* begin,
                              const std::uint32_t* end,
                              std::uint64_t* out) {
        if (begin == end) {
            simd::zeroWords(acc, w);
        } else {
            simd::copyWords(acc, meas + *begin * w, w);
            for (const auto* m = begin + 1; m != end; ++m)
                simd::xorWords(acc, meas + *m * w, w);
        }
        acc[w - 1] &= last_word_mask;
        for (std::size_t j = 0; j < w; ++j)
            out[j] = acc[j];
    };
    for (std::size_t d = 0; d < nDets; ++d)
        fold_row(detMeasBegin(d), detMeasEnd(d),
                 det_words + d * det_stride);
    for (std::size_t k = 0; k < nObs; ++k)
        fold_row(obsMeasBegin(k), obsMeasEnd(k),
                 obs_words + k * obs_stride);
}

void
FrameProgram::beginStream(FrameStreamScratch& scratch) const
{
    scratch.x.assign(nQubits, 0);
    scratch.z.assign(nQubits, 0);
    scratch.measRing.assign(ringCapacity, 0);
    scratch.measCursor = 0;
}

std::uint64_t
FrameProgram::runSlice(std::size_t s, FrameStreamScratch& scratch,
                       Rng& rng) const
{
    const auto& info = slices[s];
    HETARCH_DEBUG_ASSERT(scratch.measCursor == info.measBegin,
                         "slices must run in order (cursor ",
                         scratch.measCursor, ", slice starts at ",
                         info.measBegin, ")");
    const std::size_t mask = ringCapacity - 1;
    auto* ring = scratch.measRing.data();
    return interpretOps(stream.data() + info.opBegin,
                        stream.data() + info.opEnd, scratch.x.data(),
                        scratch.z.data(), depol2Retries, rng,
                        [&](std::uint64_t w) {
                            ring[scratch.measCursor++ & mask] = w;
                        });
}

void
FrameProgram::foldAnnotations(const FrameScratch& scratch,
                              std::uint64_t lane_mask,
                              std::uint64_t* det_words,
                              std::size_t det_stride,
                              std::uint64_t* obs_words,
                              std::size_t obs_stride) const
{
    const auto* meas = scratch.meas.data();
    for (std::size_t d = 0; d < nDets; ++d) {
        std::uint64_t word = 0;
        for (const auto* m = detMeasBegin(d); m != detMeasEnd(d); ++m)
            word ^= meas[*m];
        det_words[d * det_stride] = word & lane_mask;
    }
    for (std::size_t k = 0; k < nObs; ++k) {
        std::uint64_t word = 0;
        for (const auto* m = obsMeasBegin(k); m != obsMeasEnd(k); ++m)
            word ^= meas[*m];
        obs_words[k * obs_stride] = word & lane_mask;
    }
}

void
FrameProgram::foldSlice(std::size_t s, const FrameStreamScratch& scratch,
                        std::uint64_t lane_mask, std::uint64_t* det_words,
                        std::size_t det_stride, std::uint64_t* obs_words,
                        std::size_t obs_stride) const
{
    const auto& info = slices[s];
    HETARCH_DEBUG_ASSERT(scratch.measCursor == info.measEnd,
                         "foldSlice(", s, ") before its runSlice");
    const std::size_t mask = ringCapacity - 1;
    const auto* ring = scratch.measRing.data();
    for (std::size_t d = info.detBegin; d < info.detEnd; ++d) {
        std::uint64_t word = 0;
        for (const auto* m = detMeasBegin(d); m != detMeasEnd(d); ++m)
            word ^= ring[*m & mask];
        det_words[(d - info.detBegin) * det_stride] = word & lane_mask;
    }
    for (std::size_t e = info.obsBegin; e < info.obsEnd; ++e)
        obs_words[sliceObsId[e] * obs_stride] ^=
            ring[sliceObsMeas[e] & mask] & lane_mask;
}

namespace {

std::size_t
clampBlockWords(long words)
{
    if (words < 1)
        return 1;
    if (words > static_cast<long>(kMaxFrameBlockWords))
        return kMaxFrameBlockWords;
    return static_cast<std::size_t>(words);
}

std::atomic<std::size_t>&
blockWordsState()
{
    // Default: the full 8-word block (512 shots), overridable once via
    // the environment.  Atomic because TSan-covered tests flip the
    // width around chunk-parallel experiments.
    static std::atomic<std::size_t> state{[] {
        if (const char* env = std::getenv("HETARCH_SIMD_WIDTH"))
            return clampBlockWords(std::strtol(env, nullptr, 10));
        return kMaxFrameBlockWords;
    }()};
    return state;
}

} // namespace

std::size_t
frameBlockWords()
{
    return blockWordsState().load(std::memory_order_relaxed);
}

void
setFrameBlockWords(std::size_t words)
{
    blockWordsState().store(
        clampBlockWords(static_cast<long>(words)),
        std::memory_order_relaxed);
}

} // namespace stab
} // namespace hetarch
