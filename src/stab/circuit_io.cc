#include "stab/circuit_io.hh"

#include <sstream>
#include <vector>

#include "core/logging.hh"

namespace hetarch {
namespace stab {

namespace {

struct ParsedLine
{
    std::string name;
    int observableId = -1;
    std::vector<double> params;
    std::vector<std::size_t> targets;
};

std::size_t
parseIndex(const std::string& token, std::size_t line_no, const char* what)
{
    if (token.empty() ||
        token.find_first_not_of("0123456789") != std::string::npos)
        HETARCH_FATAL("line ", line_no, ": expected ", what, ", got '",
                      token, "'");
    try {
        return static_cast<std::size_t>(std::stoull(token));
    } catch (const std::out_of_range&) {
        HETARCH_FATAL("line ", line_no, ": ", what, " '", token,
                      "' out of range");
    }
}

double
parseParam(const std::string& token, std::size_t line_no)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(token, &pos);
    } catch (const std::exception&) {
        pos = 0;
    }
    if (pos == 0 || pos != token.size())
        HETARCH_FATAL("line ", line_no, ": bad parameter value '", token,
                      "' (expected p=<number>)");
    return value;
}

ParsedLine
tokenize(const std::string& line, std::size_t line_no)
{
    ParsedLine out;
    std::istringstream in(line);
    std::string token;
    if (!(in >> token))
        return out; // blank

    // OBSERVABLE_INCLUDE(k) carries its id in the mnemonic.
    const auto paren = token.find('(');
    if (paren != std::string::npos) {
        const auto close = token.find(')', paren);
        if (close == std::string::npos)
            HETARCH_FATAL("line ", line_no, ": unterminated '(' in '",
                          token, "'");
        out.observableId = static_cast<int>(
            parseIndex(token.substr(paren + 1, close - paren - 1),
                       line_no, "an observable index"));
        token = token.substr(0, paren);
    }
    out.name = token;

    while (in >> token) {
        if (token.rfind("p=", 0) == 0) {
            out.params.push_back(parseParam(token.substr(2), line_no));
        } else {
            out.targets.push_back(
                parseIndex(token, line_no, "a target index"));
        }
    }
    return out;
}

} // namespace

namespace {

/** Mnemonic -> opcode; false when the name is unknown. */
bool
lookupOpCode(const std::string& name, OpCode& code)
{
    static const std::pair<const char*, OpCode> table[] = {
        {"H", OpCode::H},
        {"S", OpCode::S},
        {"SDG", OpCode::SDG},
        {"X", OpCode::X},
        {"Y", OpCode::Y},
        {"Z", OpCode::Z},
        {"CX", OpCode::CX},
        {"CZ", OpCode::CZ},
        {"SWAP", OpCode::SWAP},
        {"M", OpCode::M},
        {"R", OpCode::R},
        {"MR", OpCode::MR},
        {"X_ERROR", OpCode::X_ERROR},
        {"Z_ERROR", OpCode::Z_ERROR},
        {"PAULI_CHANNEL_1", OpCode::PAULI1},
        {"DEPOLARIZE1", OpCode::DEPOL1},
        {"DEPOLARIZE2", OpCode::DEPOL2},
        {"DETECTOR", OpCode::DETECTOR},
        {"OBSERVABLE_INCLUDE", OpCode::OBSERVABLE},
    };
    for (const auto& [n, c] : table) {
        if (name == n) {
            code = c;
            return true;
        }
    }
    return false;
}

} // namespace

Circuit
parseCircuit(const std::string& text)
{
    Circuit circ;
    std::istringstream in(text);
    std::string raw;
    std::size_t line_no = 0;

    while (std::getline(in, raw)) {
        ++line_no;
        const auto hash = raw.find('#');
        if (hash != std::string::npos)
            raw = raw.substr(0, hash);
        const auto l = tokenize(raw, line_no);
        if (l.name.empty())
            continue;

        Op op;
        if (!lookupOpCode(l.name, op.code))
            HETARCH_FATAL("line ", line_no, ": unknown op '", l.name,
                          "'");
        if (op.code == OpCode::OBSERVABLE && l.observableId < 0)
            HETARCH_FATAL("line ", line_no,
                          ": OBSERVABLE_INCLUDE needs an index");
        if (l.observableId >= 0)
            op.id = static_cast<std::uint32_t>(l.observableId);
        op.params = l.params;
        op.targets.reserve(l.targets.size());
        for (auto t : l.targets)
            op.targets.push_back(static_cast<std::uint32_t>(t));

        // appendOp validates arity, probability ranges and
        // measurement-record references, and reports them against the
        // offending line.
        std::ostringstream ctx;
        ctx << "line " << line_no << ": ";
        circ.appendOp(op, ctx.str());
    }
    return circ;
}

bool
tryParseCircuit(const std::string& text, Circuit& out,
                std::string& error)
{
    ScopedFatalCapture capture;
    try {
        out = parseCircuit(text);
    } catch (const FatalError& e) {
        error = e.what();
        return false;
    }
    return true;
}

bool
circuitsEquivalent(const Circuit& a, const Circuit& b)
{
    if (a.numQubits() != b.numQubits() ||
        a.ops().size() != b.ops().size())
        return false;
    for (std::size_t i = 0; i < a.ops().size(); ++i) {
        const auto& oa = a.ops()[i];
        const auto& ob = b.ops()[i];
        if (oa.code != ob.code || oa.targets != ob.targets ||
            oa.id != ob.id)
            return false;
        if (oa.params.size() != ob.params.size())
            return false;
        for (std::size_t k = 0; k < oa.params.size(); ++k)
            if (std::abs(oa.params[k] - ob.params[k]) > 1e-12)
                return false;
    }
    return true;
}

} // namespace stab
} // namespace hetarch
