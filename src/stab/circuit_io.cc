#include "stab/circuit_io.hh"

#include <sstream>
#include <vector>

#include "core/logging.hh"

namespace hetarch {
namespace stab {

namespace {

struct ParsedLine
{
    std::string name;
    int observableId = -1;
    std::vector<double> params;
    std::vector<std::size_t> targets;
};

ParsedLine
tokenize(const std::string& line, std::size_t line_no)
{
    ParsedLine out;
    std::istringstream in(line);
    std::string token;
    if (!(in >> token))
        return out; // blank

    // OBSERVABLE_INCLUDE(k) carries its id in the mnemonic.
    const auto paren = token.find('(');
    if (paren != std::string::npos) {
        const auto close = token.find(')', paren);
        if (close == std::string::npos)
            HETARCH_FATAL("line ", line_no, ": unterminated '(' in '",
                          token, "'");
        out.observableId =
            std::stoi(token.substr(paren + 1, close - paren - 1));
        token = token.substr(0, paren);
    }
    out.name = token;

    while (in >> token) {
        if (token.rfind("p=", 0) == 0) {
            out.params.push_back(std::stod(token.substr(2)));
        } else {
            out.targets.push_back(
                static_cast<std::size_t>(std::stoull(token)));
        }
    }
    return out;
}

} // namespace

Circuit
parseCircuit(const std::string& text)
{
    Circuit circ;
    std::istringstream in(text);
    std::string raw;
    std::size_t line_no = 0;

    auto want = [&](const ParsedLine& l, std::size_t params,
                    std::size_t targets) {
        if (l.params.size() != params || l.targets.size() != targets) {
            HETARCH_FATAL("line ", line_no, ": '", l.name,
                          "' expects ", params, " params and ", targets,
                          " targets");
        }
    };
    auto q = [](std::size_t t) { return static_cast<std::uint32_t>(t); };

    while (std::getline(in, raw)) {
        ++line_no;
        const auto hash = raw.find('#');
        if (hash != std::string::npos)
            raw = raw.substr(0, hash);
        const auto l = tokenize(raw, line_no);
        if (l.name.empty())
            continue;

        if (l.name == "H" || l.name == "S" || l.name == "SDG" ||
            l.name == "X" || l.name == "Y" || l.name == "Z" ||
            l.name == "M" || l.name == "R" || l.name == "MR") {
            want(l, 0, 1);
            if (l.name == "H") circ.h(q(l.targets[0]));
            else if (l.name == "S") circ.s(q(l.targets[0]));
            else if (l.name == "SDG") circ.sdg(q(l.targets[0]));
            else if (l.name == "X") circ.x(q(l.targets[0]));
            else if (l.name == "Y") circ.y(q(l.targets[0]));
            else if (l.name == "Z") circ.z(q(l.targets[0]));
            else if (l.name == "M") circ.measure(q(l.targets[0]));
            else if (l.name == "R") circ.reset(q(l.targets[0]));
            else circ.measureReset(q(l.targets[0]));
        } else if (l.name == "CX" || l.name == "CZ" ||
                   l.name == "SWAP") {
            want(l, 0, 2);
            if (l.name == "CX")
                circ.cx(q(l.targets[0]), q(l.targets[1]));
            else if (l.name == "CZ")
                circ.cz(q(l.targets[0]), q(l.targets[1]));
            else
                circ.swap(q(l.targets[0]), q(l.targets[1]));
        } else if (l.name == "X_ERROR" || l.name == "Z_ERROR" ||
                   l.name == "DEPOLARIZE1") {
            want(l, 1, 1);
            if (l.name == "X_ERROR")
                circ.xError(q(l.targets[0]), l.params[0]);
            else if (l.name == "Z_ERROR")
                circ.zError(q(l.targets[0]), l.params[0]);
            else
                circ.depolarize1(q(l.targets[0]), l.params[0]);
        } else if (l.name == "PAULI_CHANNEL_1") {
            want(l, 3, 1);
            circ.pauliChannel1(q(l.targets[0]), l.params[0], l.params[1],
                               l.params[2]);
        } else if (l.name == "DEPOLARIZE2") {
            want(l, 1, 2);
            circ.depolarize2(q(l.targets[0]), q(l.targets[1]),
                             l.params[0]);
        } else if (l.name == "DETECTOR") {
            circ.detector(l.targets,
                          l.observableId >= 0
                              ? static_cast<std::uint32_t>(l.observableId)
                              : 0);
        } else if (l.name == "OBSERVABLE_INCLUDE") {
            HETARCH_ASSERT(l.observableId >= 0,
                           "OBSERVABLE_INCLUDE needs an index");
            circ.observableInclude(
                static_cast<std::uint32_t>(l.observableId), l.targets);
        } else {
            HETARCH_FATAL("line ", line_no, ": unknown op '", l.name,
                          "'");
        }
    }
    return circ;
}

bool
circuitsEquivalent(const Circuit& a, const Circuit& b)
{
    if (a.numQubits() != b.numQubits() ||
        a.ops().size() != b.ops().size())
        return false;
    for (std::size_t i = 0; i < a.ops().size(); ++i) {
        const auto& oa = a.ops()[i];
        const auto& ob = b.ops()[i];
        if (oa.code != ob.code || oa.targets != ob.targets ||
            oa.id != ob.id)
            return false;
        if (oa.params.size() != ob.params.size())
            return false;
        for (std::size_t k = 0; k < oa.params.size(); ++k)
            if (std::abs(oa.params[k] - ob.params[k]) > 1e-12)
                return false;
    }
    return true;
}

} // namespace stab
} // namespace hetarch
