#include "stab/circuit.hh"

#include <sstream>

#include "core/logging.hh"

namespace hetarch {
namespace stab {

const char*
opCodeName(OpCode code)
{
    switch (code) {
      case OpCode::H: return "H";
      case OpCode::S: return "S";
      case OpCode::SDG: return "SDG";
      case OpCode::X: return "X";
      case OpCode::Y: return "Y";
      case OpCode::Z: return "Z";
      case OpCode::CX: return "CX";
      case OpCode::CZ: return "CZ";
      case OpCode::SWAP: return "SWAP";
      case OpCode::M: return "M";
      case OpCode::R: return "R";
      case OpCode::MR: return "MR";
      case OpCode::X_ERROR: return "X_ERROR";
      case OpCode::Z_ERROR: return "Z_ERROR";
      case OpCode::PAULI1: return "PAULI_CHANNEL_1";
      case OpCode::DEPOL1: return "DEPOLARIZE1";
      case OpCode::DEPOL2: return "DEPOLARIZE2";
      case OpCode::DETECTOR: return "DETECTOR";
      case OpCode::OBSERVABLE: return "OBSERVABLE_INCLUDE";
    }
    return "?";
}

Circuit::Circuit(std::size_t num_qubits)
    : nq(num_qubits)
{
}

void
Circuit::ensureQubit(std::size_t q)
{
    if (q >= nq)
        nq = q + 1;
}

void
Circuit::pushUnary(OpCode code, std::uint32_t q)
{
    ensureQubit(q);
    opList.push_back({code, {q}, {}, 0});
}

void
Circuit::pushPair(OpCode code, std::uint32_t a, std::uint32_t b)
{
    HETARCH_ASSERT(a != b, "two-qubit op needs distinct qubits");
    ensureQubit(a);
    ensureQubit(b);
    opList.push_back({code, {a, b}, {}, 0});
}

void Circuit::h(std::uint32_t q) { pushUnary(OpCode::H, q); }
void Circuit::s(std::uint32_t q) { pushUnary(OpCode::S, q); }
void Circuit::sdg(std::uint32_t q) { pushUnary(OpCode::SDG, q); }
void Circuit::x(std::uint32_t q) { pushUnary(OpCode::X, q); }
void Circuit::y(std::uint32_t q) { pushUnary(OpCode::Y, q); }
void Circuit::z(std::uint32_t q) { pushUnary(OpCode::Z, q); }

void
Circuit::cx(std::uint32_t control, std::uint32_t target)
{
    pushPair(OpCode::CX, control, target);
}

void
Circuit::cz(std::uint32_t a, std::uint32_t b)
{
    pushPair(OpCode::CZ, a, b);
}

void
Circuit::swap(std::uint32_t a, std::uint32_t b)
{
    pushPair(OpCode::SWAP, a, b);
}

std::size_t
Circuit::measure(std::uint32_t q)
{
    pushUnary(OpCode::M, q);
    return nMeas++;
}

void
Circuit::reset(std::uint32_t q)
{
    pushUnary(OpCode::R, q);
}

std::size_t
Circuit::measureReset(std::uint32_t q)
{
    pushUnary(OpCode::MR, q);
    return nMeas++;
}

void
Circuit::xError(std::uint32_t q, double p)
{
    HETARCH_ASSERT(p >= 0.0 && p <= 1.0, "probability out of range");
    ensureQubit(q);
    if (p > 0.0)
        opList.push_back({OpCode::X_ERROR, {q}, {p}, 0});
}

void
Circuit::zError(std::uint32_t q, double p)
{
    HETARCH_ASSERT(p >= 0.0 && p <= 1.0, "probability out of range");
    ensureQubit(q);
    if (p > 0.0)
        opList.push_back({OpCode::Z_ERROR, {q}, {p}, 0});
}

void
Circuit::pauliChannel1(std::uint32_t q, double px, double py, double pz)
{
    HETARCH_ASSERT(px >= 0.0 && py >= 0.0 && pz >= 0.0 &&
                   px + py + pz <= 1.0 + 1e-12,
                   "invalid Pauli channel probabilities");
    ensureQubit(q);
    if (px + py + pz > 0.0)
        opList.push_back({OpCode::PAULI1, {q}, {px, py, pz}, 0});
}

void
Circuit::depolarize1(std::uint32_t q, double p)
{
    HETARCH_ASSERT(p >= 0.0 && p <= 1.0, "probability out of range");
    ensureQubit(q);
    if (p > 0.0)
        opList.push_back({OpCode::DEPOL1, {q}, {p}, 0});
}

void
Circuit::depolarize2(std::uint32_t a, std::uint32_t b, double p)
{
    HETARCH_ASSERT(p >= 0.0 && p <= 1.0, "probability out of range");
    HETARCH_ASSERT(a != b, "depolarize2 needs distinct qubits");
    ensureQubit(a);
    ensureQubit(b);
    if (p > 0.0)
        opList.push_back({OpCode::DEPOL2, {a, b}, {p}, 0});
}

std::size_t
Circuit::detector(const std::vector<std::size_t>& meas_indices,
                  std::uint32_t tag)
{
    Op op{OpCode::DETECTOR, {}, {}, tag};
    op.targets.reserve(meas_indices.size());
    for (auto m : meas_indices) {
        HETARCH_ASSERT(m < nMeas, "detector references measurement ", m,
                       " but only ", nMeas, " exist");
        op.targets.push_back(static_cast<std::uint32_t>(m));
    }
    opList.push_back(std::move(op));
    detTags.push_back(tag);
    return nDets++;
}

void
Circuit::observableInclude(std::uint32_t index,
                           const std::vector<std::size_t>& meas_indices)
{
    Op op{OpCode::OBSERVABLE, {}, {}, index};
    op.targets.reserve(meas_indices.size());
    for (auto m : meas_indices) {
        HETARCH_ASSERT(m < nMeas, "observable references measurement ", m,
                       " but only ", nMeas, " exist");
        op.targets.push_back(static_cast<std::uint32_t>(m));
    }
    opList.push_back(std::move(op));
    if (index + 1 > nObs)
        nObs = index + 1;
}

void
Circuit::append(const Circuit& other)
{
    const auto meas_offset = static_cast<std::uint32_t>(nMeas);
    for (Op op : other.opList) {
        if (op.code == OpCode::DETECTOR || op.code == OpCode::OBSERVABLE) {
            for (auto& t : op.targets)
                t += meas_offset;
            if (op.code == OpCode::DETECTOR) {
                detTags.push_back(op.id);
                ++nDets;
            } else if (op.id + 1 > nObs) {
                nObs = op.id + 1;
            }
        }
        opList.push_back(std::move(op));
    }
    nMeas += other.nMeas;
    if (other.nq > nq)
        nq = other.nq;
}

void
Circuit::appendOp(const Op& op, const std::string& context)
{
    const auto* name = opCodeName(op.code);
    auto need_params = [&](std::size_t n) {
        if (op.params.size() != n)
            HETARCH_FATAL(context, "'", name, "' expects ", n,
                          " params, got ", op.params.size());
    };
    auto need_prob = [&](double p) {
        if (p < 0.0 || p > 1.0)
            HETARCH_FATAL(context, "'", name, "' probability ", p,
                          " outside [0, 1]");
    };
    auto need_pairs = [&]() {
        if (op.targets.empty() || op.targets.size() % 2 != 0)
            HETARCH_FATAL(context, "'", name,
                          "' expects an even number of targets "
                          "(pairs), got ", op.targets.size());
        for (std::size_t k = 0; k < op.targets.size(); k += 2)
            if (op.targets[k] == op.targets[k + 1])
                HETARCH_FATAL(context, "'", name,
                              "' pairs qubit ", op.targets[k],
                              " with itself");
    };
    auto need_targets = [&]() {
        if (op.targets.empty())
            HETARCH_FATAL(context, "'", name, "' expects at least one "
                          "target");
    };

    switch (op.code) {
      case OpCode::H:
      case OpCode::S:
      case OpCode::SDG:
      case OpCode::X:
      case OpCode::Y:
      case OpCode::Z:
      case OpCode::M:
      case OpCode::R:
      case OpCode::MR:
        need_params(0);
        need_targets();
        for (auto q : op.targets) {
            switch (op.code) {
              case OpCode::M: measure(q); break;
              case OpCode::R: reset(q); break;
              case OpCode::MR: measureReset(q); break;
              default: pushUnary(op.code, q); break;
            }
        }
        break;
      case OpCode::CX:
      case OpCode::CZ:
      case OpCode::SWAP:
        need_params(0);
        need_pairs();
        for (std::size_t k = 0; k < op.targets.size(); k += 2)
            pushPair(op.code, op.targets[k], op.targets[k + 1]);
        break;
      case OpCode::X_ERROR:
      case OpCode::Z_ERROR:
      case OpCode::DEPOL1:
        need_params(1);
        need_prob(op.params[0]);
        need_targets();
        for (auto q : op.targets) {
            if (op.code == OpCode::X_ERROR)
                xError(q, op.params[0]);
            else if (op.code == OpCode::Z_ERROR)
                zError(q, op.params[0]);
            else
                depolarize1(q, op.params[0]);
        }
        break;
      case OpCode::PAULI1: {
        need_params(3);
        for (auto p : op.params)
            need_prob(p);
        const double sum = op.params[0] + op.params[1] + op.params[2];
        if (sum > 1.0 + 1e-12)
            HETARCH_FATAL(context, "'", name, "' probabilities sum to ",
                          sum, " (> 1)");
        need_targets();
        for (auto q : op.targets)
            pauliChannel1(q, op.params[0], op.params[1], op.params[2]);
        break;
      }
      case OpCode::DEPOL2:
        need_params(1);
        need_prob(op.params[0]);
        need_pairs();
        for (std::size_t k = 0; k < op.targets.size(); k += 2)
            depolarize2(op.targets[k], op.targets[k + 1], op.params[0]);
        break;
      case OpCode::DETECTOR:
      case OpCode::OBSERVABLE: {
        need_params(0);
        std::vector<std::size_t> refs;
        refs.reserve(op.targets.size());
        for (auto m : op.targets) {
            if (m >= nMeas)
                HETARCH_FATAL(context, "'", name,
                              "' references measurement ", m,
                              " but only ", nMeas, " exist");
            refs.push_back(m);
        }
        if (op.code == OpCode::DETECTOR)
            detector(refs, op.id);
        else
            observableInclude(op.id, refs);
        break;
      }
    }
}

Circuit
Circuit::fromRawOps(std::size_t num_qubits, std::vector<Op> ops)
{
    Circuit circ(num_qubits);
    circ.opList = std::move(ops);
    for (const auto& op : circ.opList) {
        switch (op.code) {
          case OpCode::M:
          case OpCode::MR:
            ++circ.nMeas;
            break;
          case OpCode::DETECTOR:
            circ.detTags.push_back(op.id);
            ++circ.nDets;
            break;
          case OpCode::OBSERVABLE:
            if (op.id + 1 > circ.nObs)
                circ.nObs = op.id + 1;
            break;
          default:
            break;
        }
    }
    return circ;
}

std::string
Circuit::toString() const
{
    std::ostringstream os;
    os.precision(17);
    for (const auto& op : opList) {
        os << opCodeName(op.code);
        if (op.code == OpCode::OBSERVABLE ||
            (op.code == OpCode::DETECTOR && op.id != 0))
            os << "(" << op.id << ")";
        for (auto p : op.params)
            os << " p=" << p;
        for (auto t : op.targets)
            os << " " << t;
        os << "\n";
    }
    return os.str();
}

} // namespace stab
} // namespace hetarch
