/**
 * @file
 * Batched Pauli-frame Monte-Carlo sampler.
 *
 * Instead of simulating the full stabilizer state, the frame sampler
 * tracks only the *difference* (a Pauli frame) between the noisy run
 * and the noiseless reference run.  Detector values are parities of
 * measurement-flip bits, so they can be sampled without knowing the
 * reference outcomes at all — this is exactly Stim's trick, and it is
 * what makes 10^5-shot surface-code experiments cheap.
 *
 * 64 shots are propagated simultaneously, one per bit of a 64-bit word.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hh"
#include "stab/circuit.hh"

namespace hetarch {
namespace stab {

/** Result of a batch of detector-sampling shots. */
struct DetectorSamples
{
    std::size_t shots = 0;
    std::size_t numDetectors = 0;
    std::size_t numObservables = 0;
    /**
     * detectors[shot * numDetectors + d]: whether detector d fired.
     * Stored unpacked for decoder convenience.
     */
    std::vector<std::uint8_t> detectors;
    /** observables[shot * numObservables + k]. */
    std::vector<std::uint8_t> observables;

    std::uint8_t det(std::size_t shot, std::size_t d) const
    {
        return detectors[shot * numDetectors + d];
    }
    std::uint8_t obs(std::size_t shot, std::size_t k) const
    {
        return observables[shot * numObservables + k];
    }
};

/**
 * Pauli-frame simulator over a fixed circuit.
 */
class FrameSimulator
{
  public:
    explicit FrameSimulator(const Circuit& circuit);

    /**
     * Sample @p shots Monte-Carlo shots of all detectors/observables.
     * Shots are processed in batches of 64.
     */
    DetectorSamples sampleDetectors(std::size_t shots, Rng& rng) const;

    /**
     * Single-shot sampling of raw measurement *flips* relative to the
     * noiseless reference (mostly for tests and DEM cross-checks).
     */
    std::vector<std::uint8_t> sampleMeasurementFlips(Rng& rng) const;

  private:
    const Circuit& circ;
};

} // namespace stab
} // namespace hetarch
