/**
 * @file
 * Batched Pauli-frame Monte-Carlo sampler.
 *
 * Instead of simulating the full stabilizer state, the frame sampler
 * tracks only the *difference* (a Pauli frame) between the noisy run
 * and the noiseless reference run.  Detector values are parities of
 * measurement-flip bits, so they can be sampled without knowing the
 * reference outcomes at all — this is exactly Stim's trick, and it is
 * what makes 10^5-shot surface-code experiments cheap.
 *
 * 64 shots are propagated simultaneously, one per bit of a 64-bit
 * word, and — since the bit-packed pipeline — *stay* packed through
 * the output: DetectorSamples stores detector-major words whose bit
 * lanes are shots, so the sampler's 64-way parallelism survives to the
 * decoder instead of being unpacked into per-shot byte arrays at the
 * boundary.  The sampler itself runs a FrameProgram (the circuit
 * lowered once, see frame_program.hh) rather than re-interpreting the
 * op list per batch.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/logging.hh"
#include "core/rng.hh"
#include "stab/circuit.hh"
#include "stab/frame_program.hh"

namespace hetarch {
namespace stab {

/**
 * Result of a batch of detector-sampling shots, bit-packed.
 *
 * Layout is detector-major: detector d's word w is
 * detWords[d * numWords + w], and shot s lives in bit lane (s % 64) of
 * word s / 64.  Idle lanes of a final partial word are zero, so
 * popcounts over words count real events only.  Observables use the
 * same layout in obsWords.
 */
struct DetectorSamples
{
    std::size_t shots = 0;
    std::size_t numDetectors = 0;
    std::size_t numObservables = 0;
    /** Packed words per detector/observable row: ceil(shots / 64). */
    std::size_t numWords = 0;
    std::vector<std::uint64_t> detWords;
    std::vector<std::uint64_t> obsWords;

    /** Word @p w of detector @p d's packed row. */
    std::uint64_t detWord(std::size_t d, std::size_t w) const
    {
        HETARCH_DEBUG_ASSERT(d < numDetectors && w < numWords,
                             "detector word (", d, ",", w,
                             ") out of range");
        return detWords[d * numWords + w];
    }
    /** Word @p w of observable @p k's packed row. */
    std::uint64_t obsWord(std::size_t k, std::size_t w) const
    {
        HETARCH_DEBUG_ASSERT(k < numObservables && w < numWords,
                             "observable word (", k, ",", w,
                             ") out of range");
        return obsWords[k * numWords + w];
    }

    /**
     * Whether detector @p d fired in shot @p shot.  Test-only compat
     * accessor: per-(shot, detector) bit extraction re-derives the
     * lane/word split on every call.  Production paths iterate packed
     * word blocks directly (detWord / obsWord); every non-test call
     * site has been migrated.
     */
    std::uint8_t det(std::size_t shot, std::size_t d) const
    {
        HETARCH_DEBUG_ASSERT(shot < shots && d < numDetectors,
                             "detector sample (", shot, ",", d,
                             ") out of range");
        return static_cast<std::uint8_t>(
            (detWords[d * numWords + shot / 64] >> (shot % 64)) & 1);
    }
    /** Observable @p k's value in shot @p shot; test-only, see det(). */
    std::uint8_t obs(std::size_t shot, std::size_t k) const
    {
        HETARCH_DEBUG_ASSERT(shot < shots && k < numObservables,
                             "observable sample (", shot, ",", k,
                             ") out of range");
        return static_cast<std::uint8_t>(
            (obsWords[k * numWords + shot / 64] >> (shot % 64)) & 1);
    }

    /** Number of fired detectors in shot @p shot (popcount column). */
    std::size_t shotWeight(std::size_t shot) const;

    /**
     * Test-only compat accessors: the pre-packing shot-major uint8
     * layout, detectors[shot * numDetectors + d].  O(shots x
     * detectors); cross-validation tests compare layouts through
     * these, production code iterates the packed words.
     */
    std::vector<std::uint8_t> unpackedDetectors() const;
    /** observables[shot * numObservables + k]; see unpackedDetectors. */
    std::vector<std::uint8_t> unpackedObservables() const;

    /** Allocate zeroed rows for @p n_shots shots. */
    void resize(std::size_t n_shots, std::size_t n_detectors,
                std::size_t n_observables);

    /**
     * Append @p other's shots after this buffer's.  The current shot
     * count must be a multiple of 64 (packed rows concatenate
     * word-wise), which the 64-aligned chunks of exec::ShotScheduler
     * guarantee for every chunk but the last.
     */
    void append(const DetectorSamples& other);
};

/**
 * One streaming unit of sampled data: the packed detector words of one
 * program slice ("round") of one 64-shot batch, plus the slice's
 * partial observable contribution.  Blocks of a batch arrive in slice
 * order; a consumer XOR-accumulates obsWords across the batch's blocks
 * to recover the full observable word.
 */
struct SyndromeBlock
{
    std::size_t batch = 0; ///< 64-shot batch index within the stream
    std::size_t slice = 0; ///< program slice ("round") index
    std::size_t lanes = 0; ///< active shot lanes (1..64)
    bool lastSliceOfBatch = false;
    std::uint32_t detBegin = 0; ///< global id of detWords[0]'s detector
    std::vector<std::uint64_t> detWords; ///< word per slice detector
    std::vector<std::uint64_t> obsWords; ///< partial obs XOR, per obs
};

/**
 * Incremental detector sampling: emits the shots of one chunk as
 * SyndromeBlocks, batch-major then slice-major, over the bounded
 * measurement ring of FrameStreamScratch — peak storage is one slice
 * plus the program's measurement lookback, independent of the round
 * count.
 *
 * RNG and telemetry parity with FrameSimulator::sampleDetectors: the
 * stream consumes the generator identically (sliced execution shares
 * the batch interpreter) and flushes the same stab.sampler.* counter
 * totals exactly once, when the stream is exhausted.
 */
class DetectorStream
{
  public:
    DetectorStream(std::shared_ptr<const FrameProgram> program,
                   std::size_t shots);

    std::size_t shots() const { return nShots; }
    std::size_t numBatches() const { return nBatches; }
    std::size_t numSlices() const { return prog->numSlices(); }

    /**
     * Produce the next block into @p block (buffers are reused).
     * Returns false once the stream is exhausted — the call that
     * observes exhaustion flushes the sampler telemetry.
     */
    bool next(Rng& rng, SyndromeBlock& block);

  private:
    std::shared_ptr<const FrameProgram> prog;
    std::size_t nShots;
    std::size_t nBatches;
    std::size_t curBatch = 0;
    std::size_t curSlice = 0;
    FrameStreamScratch scratch;
    std::uint64_t flips = 0;
    bool flushed = false;
};

/**
 * Pauli-frame simulator over a fixed circuit (or pre-compiled frame
 * program — e.g. the one cached in qec::DecoderCache).
 */
class FrameSimulator
{
  public:
    /** Compile @p circuit privately (one cheap lowering pass). */
    explicit FrameSimulator(const Circuit& circuit);
    /** Share an already-compiled program; no reference to a Circuit. */
    explicit FrameSimulator(std::shared_ptr<const FrameProgram> program);

    /**
     * Sample @p shots Monte-Carlo shots of all detectors/observables,
     * bit-packed.  Shots are processed in batches of 64.
     */
    DetectorSamples sampleDetectors(std::size_t shots, Rng& rng) const;

    /**
     * Reference implementation: interpret the circuit op list per
     * batch (the pre-FrameProgram path) and unpack each shot into the
     * packed layout through the public accessor contract.  Consumes
     * the RNG stream identically to sampleDetectors, so fixed seeds
     * must produce bit-identical samples — the cross-validation tests
     * and the ablation benches pin and measure exactly that.  Requires
     * construction from a Circuit.
     */
    DetectorSamples sampleDetectorsReference(std::size_t shots,
                                             Rng& rng) const;

    /**
     * Single-shot sampling of raw measurement *flips* relative to the
     * noiseless reference (mostly for tests and DEM cross-checks).
     */
    std::vector<std::uint8_t> sampleMeasurementFlips(Rng& rng) const;

    const FrameProgram& program() const { return *prog; }

  private:
    const Circuit* circ = nullptr; ///< only for the reference path
    std::shared_ptr<const FrameProgram> prog;
};

/**
 * Record the detected SIMD backend width as the one-shot gauge counter
 * `stab.sampler.simd_width` (64-bit words per vector op: 4 for AVX2, 2
 * for NEON, 1 for the scalar fallback).  The value is machine-dependent
 * by design, so compare_bench.py excludes it from exact comparison;
 * call this from bench harnesses only, never from library paths, so
 * deterministic counter-delta snapshots stay machine-independent.
 */
void recordSimdTelemetry();

} // namespace stab
} // namespace hetarch
