#include "stab/tableau.hh"

#include "core/logging.hh"

namespace hetarch {
namespace stab {

TableauSimulator::TableauSimulator(std::size_t num_qubits)
    : nq(num_qubits)
{
    rows.reserve(2 * nq);
    // Destabilizers: X_q; stabilizers: Z_q.
    for (std::size_t q = 0; q < nq; ++q)
        rows.push_back(PauliString::single(nq, q, 'X'));
    for (std::size_t q = 0; q < nq; ++q)
        rows.push_back(PauliString::single(nq, q, 'Z'));
}

void
TableauSimulator::rowMult(std::size_t h, std::size_t i)
{
    rows[h] *= rows[i];
    // Stabilizer rows are group elements with real signs; destabilizer
    // rows may legitimately pick up +-i phases (their signs carry no
    // meaning and are never read).
    HETARCH_ASSERT(h < nq || (rows[h].phase() & 1) == 0,
                   "stabilizer row acquired imaginary phase");
}

void
TableauSimulator::h(std::size_t q)
{
    for (auto& row : rows) {
        const bool xb = row.xBit(q), zb = row.zBit(q);
        if (xb && zb)
            row.setPhase(row.phase() + 2);
        row.setX(q, zb);
        row.setZ(q, xb);
    }
}

void
TableauSimulator::s(std::size_t q)
{
    for (auto& row : rows) {
        const bool xb = row.xBit(q), zb = row.zBit(q);
        if (xb && zb)
            row.setPhase(row.phase() + 2);
        row.setZ(q, zb ^ xb);
    }
}

void
TableauSimulator::sdg(std::size_t q)
{
    s(q);
    z(q);
}

void
TableauSimulator::x(std::size_t q)
{
    for (auto& row : rows)
        if (row.zBit(q))
            row.setPhase(row.phase() + 2);
}

void
TableauSimulator::z(std::size_t q)
{
    for (auto& row : rows)
        if (row.xBit(q))
            row.setPhase(row.phase() + 2);
}

void
TableauSimulator::y(std::size_t q)
{
    for (auto& row : rows)
        if (row.xBit(q) ^ row.zBit(q))
            row.setPhase(row.phase() + 2);
}

void
TableauSimulator::cx(std::size_t control, std::size_t target)
{
    for (auto& row : rows) {
        const bool xc = row.xBit(control), zc = row.zBit(control);
        const bool xt = row.xBit(target), zt = row.zBit(target);
        if (xc && zt && (xt == zc))
            row.setPhase(row.phase() + 2);
        row.setX(target, xt ^ xc);
        row.setZ(control, zc ^ zt);
    }
}

void
TableauSimulator::cz(std::size_t a, std::size_t b)
{
    h(b);
    cx(a, b);
    h(b);
}

void
TableauSimulator::swapQubits(std::size_t a, std::size_t b)
{
    cx(a, b);
    cx(b, a);
    cx(a, b);
}

void
TableauSimulator::applyPauli(const PauliString& p)
{
    HETARCH_ASSERT(p.numQubits() == nq, "Pauli size mismatch");
    for (std::size_t q = 0; q < nq; ++q) {
        const bool xb = p.xBit(q), zb = p.zBit(q);
        if (xb && zb)
            y(q);
        else if (xb)
            x(q);
        else if (zb)
            z(q);
    }
}

bool
TableauSimulator::measure(std::size_t q, Rng& rng, bool* was_random,
                          std::optional<bool> forced_outcome)
{
    HETARCH_ASSERT(q < nq, "qubit out of range");

    // Find a stabilizer row anticommuting with Z_q (x bit set on q).
    std::size_t p = 2 * nq;
    for (std::size_t i = nq; i < 2 * nq; ++i) {
        if (rows[i].xBit(q)) {
            p = i;
            break;
        }
    }

    if (p < 2 * nq) {
        // Random outcome.
        if (was_random)
            *was_random = true;
        const bool outcome =
            forced_outcome.has_value() ? *forced_outcome : rng.bernoulli(0.5);

        for (std::size_t i = 0; i < 2 * nq; ++i)
            if (i != p && rows[i].xBit(q))
                rowMult(i, p);

        rows[p - nq] = rows[p];
        PauliString zq = PauliString::single(nq, q, 'Z');
        zq.setPhase(outcome ? 2 : 0);
        rows[p] = zq;
        return outcome;
    }

    // Deterministic outcome: accumulate the matching stabilizers into a
    // scratch row using the destabilizer pattern.
    if (was_random)
        *was_random = false;
    PauliString scratch(nq);
    for (std::size_t i = 0; i < nq; ++i) {
        if (rows[i].xBit(q)) { // destabilizer i anticommutes with Z_q
            scratch *= rows[i + nq];
            HETARCH_ASSERT((scratch.phase() & 1) == 0,
                           "scratch acquired imaginary phase");
        }
    }
    return scratch.phase() == 2;
}

void
TableauSimulator::reset(std::size_t q, Rng& rng)
{
    if (measure(q, rng))
        x(q);
}

int
TableauSimulator::expectation(const PauliString& p) const
{
    HETARCH_ASSERT(p.numQubits() == nq, "Pauli size mismatch");
    // If p anticommutes with any stabilizer, expectation is 0.
    for (std::size_t i = nq; i < 2 * nq; ++i)
        if (!rows[i].commutesWith(p))
            return 0;
    // Otherwise p (up to sign) is a product of stabilizers; accumulate
    // the product of stabilizers matching via destabilizers.
    PauliString scratch(nq);
    for (std::size_t i = 0; i < nq; ++i)
        if (!rows[i].commutesWith(p))
            scratch *= rows[i + nq];
    HETARCH_ASSERT(scratch.xVec() == p.xVec() && scratch.zVec() == p.zVec(),
                   "expectation: Pauli not in stabilizer group span");
    const int rel = (scratch.phase() - p.phase() + 4) % 4;
    HETARCH_ASSERT(rel == 0 || rel == 2, "non-real relative phase");
    return rel == 0 ? 1 : -1;
}

std::vector<PauliString>
TableauSimulator::stabilizers() const
{
    return {rows.begin() + static_cast<std::ptrdiff_t>(nq), rows.end()};
}

std::vector<bool>
TableauSimulator::run(const Circuit& circuit, Rng& rng)
{
    HETARCH_ASSERT(circuit.numQubits() <= nq,
                   "circuit does not fit the register");
    std::vector<bool> record;
    record.reserve(circuit.numMeasurements());

    for (const auto& op : circuit.ops()) {
        switch (op.code) {
          case OpCode::H: h(op.targets[0]); break;
          case OpCode::S: s(op.targets[0]); break;
          case OpCode::SDG: sdg(op.targets[0]); break;
          case OpCode::X: x(op.targets[0]); break;
          case OpCode::Y: y(op.targets[0]); break;
          case OpCode::Z: z(op.targets[0]); break;
          case OpCode::CX: cx(op.targets[0], op.targets[1]); break;
          case OpCode::CZ: cz(op.targets[0], op.targets[1]); break;
          case OpCode::SWAP: swapQubits(op.targets[0], op.targets[1]); break;
          case OpCode::M:
            record.push_back(measure(op.targets[0], rng));
            break;
          case OpCode::R:
            reset(op.targets[0], rng);
            break;
          case OpCode::MR:
            record.push_back(measure(op.targets[0], rng));
            if (record.back())
                x(op.targets[0]);
            break;
          case OpCode::X_ERROR:
            if (rng.bernoulli(op.params[0]))
                x(op.targets[0]);
            break;
          case OpCode::Z_ERROR:
            if (rng.bernoulli(op.params[0]))
                z(op.targets[0]);
            break;
          case OpCode::PAULI1: {
            const double u = rng.uniform();
            if (u < op.params[0])
                x(op.targets[0]);
            else if (u < op.params[0] + op.params[1])
                y(op.targets[0]);
            else if (u < op.params[0] + op.params[1] + op.params[2])
                z(op.targets[0]);
            break;
          }
          case OpCode::DEPOL1: {
            if (rng.bernoulli(op.params[0])) {
                switch (rng.uniformInt(3)) {
                  case 0: x(op.targets[0]); break;
                  case 1: y(op.targets[0]); break;
                  default: z(op.targets[0]); break;
                }
            }
            break;
          }
          case OpCode::DEPOL2: {
            if (rng.bernoulli(op.params[0])) {
                const auto k = 1 + rng.uniformInt(15); // skip II
                const auto pa = k & 3, pb = (k >> 2) & 3;
                auto apply1 = [&](std::size_t q, std::uint64_t which) {
                    switch (which) {
                      case 1: x(q); break;
                      case 2: y(q); break;
                      case 3: z(q); break;
                      default: break;
                    }
                };
                apply1(op.targets[0], pa);
                apply1(op.targets[1], pb);
            }
            break;
          }
          case OpCode::DETECTOR:
          case OpCode::OBSERVABLE:
            break; // evaluated from the record afterwards
        }
    }
    return record;
}

std::vector<bool>
TableauSimulator::referenceRun(const Circuit& circuit,
                               std::vector<bool>* random_mask)
{
    Rng unused(0);
    std::vector<bool> record;
    if (random_mask)
        random_mask->clear();

    for (const auto& op : circuit.ops()) {
        switch (op.code) {
          case OpCode::H: h(op.targets[0]); break;
          case OpCode::S: s(op.targets[0]); break;
          case OpCode::SDG: sdg(op.targets[0]); break;
          case OpCode::X: x(op.targets[0]); break;
          case OpCode::Y: y(op.targets[0]); break;
          case OpCode::Z: z(op.targets[0]); break;
          case OpCode::CX: cx(op.targets[0], op.targets[1]); break;
          case OpCode::CZ: cz(op.targets[0], op.targets[1]); break;
          case OpCode::SWAP: swapQubits(op.targets[0], op.targets[1]); break;
          case OpCode::M:
          case OpCode::MR: {
            bool was_random = false;
            const bool m = measure(op.targets[0], unused, &was_random,
                                   /*forced_outcome=*/false);
            record.push_back(m);
            if (random_mask)
                random_mask->push_back(was_random);
            if (op.code == OpCode::MR && m)
                x(op.targets[0]);
            break;
          }
          case OpCode::R:
            reset(op.targets[0], unused);
            break;
          default:
            break; // noise skipped; annotations evaluated later
        }
    }
    return record;
}

std::pair<std::vector<bool>, std::vector<bool>>
TableauSimulator::annotationsFromRecord(const Circuit& circuit,
                                        const std::vector<bool>& record)
{
    std::vector<bool> dets;
    dets.reserve(circuit.numDetectors());
    std::vector<bool> obs(circuit.numObservables(), false);

    for (const auto& op : circuit.ops()) {
        if (op.code == OpCode::DETECTOR) {
            bool parity = false;
            for (auto m : op.targets)
                parity = parity ^ record[m];
            dets.push_back(parity);
        } else if (op.code == OpCode::OBSERVABLE) {
            bool parity = obs[op.id];
            for (auto m : op.targets)
                parity = parity ^ record[m];
            obs[op.id] = parity;
        }
    }
    return {dets, obs};
}

bool
TableauSimulator::checkDetectorsDeterministic(const Circuit& circuit,
                                              int trials, std::uint64_t seed)
{
    // Strip noise and run several times with random measurement
    // outcomes; all detector and observable parities must agree.
    std::vector<bool> first_dets, first_obs;
    Rng rng(seed);
    for (int t = 0; t < trials; ++t) {
        TableauSimulator sim(circuit.numQubits());
        // Noiseless run, but *random* outcomes this time.
        Circuit noiseless(circuit.numQubits());
        std::vector<bool> record;
        for (const auto& op : circuit.ops()) {
            switch (op.code) {
              case OpCode::X_ERROR:
              case OpCode::Z_ERROR:
              case OpCode::PAULI1:
              case OpCode::DEPOL1:
              case OpCode::DEPOL2:
                break;
              case OpCode::M:
                record.push_back(sim.measure(op.targets[0], rng));
                break;
              case OpCode::MR:
                record.push_back(sim.measure(op.targets[0], rng));
                if (record.back())
                    sim.x(op.targets[0]);
                break;
              case OpCode::R:
                sim.reset(op.targets[0], rng);
                break;
              case OpCode::H: sim.h(op.targets[0]); break;
              case OpCode::S: sim.s(op.targets[0]); break;
              case OpCode::SDG: sim.sdg(op.targets[0]); break;
              case OpCode::X: sim.x(op.targets[0]); break;
              case OpCode::Y: sim.y(op.targets[0]); break;
              case OpCode::Z: sim.z(op.targets[0]); break;
              case OpCode::CX: sim.cx(op.targets[0], op.targets[1]); break;
              case OpCode::CZ: sim.cz(op.targets[0], op.targets[1]); break;
              case OpCode::SWAP:
                sim.swapQubits(op.targets[0], op.targets[1]);
                break;
              default:
                break;
            }
        }
        auto [dets, obs] = annotationsFromRecord(circuit, record);
        if (t == 0) {
            first_dets = dets;
            first_obs = obs;
        } else if (dets != first_dets || obs != first_obs) {
            return false;
        }
    }
    return true;
}

} // namespace stab
} // namespace hetarch
