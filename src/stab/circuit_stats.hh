/**
 * @file
 * Circuit cost statistics: gate counts, noise-site counts, and an
 * ASAP-depth estimate.  Used in experiment reports and to compare the
 * hardware cost of heterogeneous vs homogeneous schedules.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "stab/circuit.hh"

namespace hetarch {
namespace stab {

/** Aggregate operation counts of a circuit. */
struct CircuitStats
{
    std::size_t qubits = 0;
    std::size_t oneQubitGates = 0;  ///< H, S, SDG, X, Y, Z
    std::size_t twoQubitGates = 0;  ///< CX, CZ, SWAP
    std::size_t measurements = 0;   ///< M + MR
    std::size_t resets = 0;         ///< R + MR
    std::size_t noiseSites = 0;     ///< noise ops of any kind
    std::size_t detectors = 0;
    /**
     * ASAP schedule depth counting only gates/measurements (each op
     * occupies its targets for one step).
     */
    std::size_t depth = 0;

    std::size_t totalGates() const
    {
        return oneQubitGates + twoQubitGates;
    }
};

/** Compute statistics for @p circuit. */
CircuitStats analyzeCircuit(const Circuit& circuit);

/**
 * Content hash of a circuit: FNV-1a over the full op stream including
 * noise parameters, so two circuits hash alike iff they simulate,
 * decode, and schedule identically.  The memoization key of
 * qec::DecoderCache and lint::sched::ScheduleCache.
 */
std::uint64_t hashCircuit(const Circuit& circuit);

} // namespace stab
} // namespace hetarch
