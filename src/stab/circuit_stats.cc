#include "stab/circuit_stats.hh"

#include <algorithm>
#include <cstring>
#include <vector>

namespace hetarch {
namespace stab {

CircuitStats
analyzeCircuit(const Circuit& circuit)
{
    CircuitStats stats;
    stats.qubits = circuit.numQubits();
    stats.detectors = circuit.numDetectors();

    std::vector<std::size_t> ready(circuit.numQubits(), 0);
    auto schedule = [&](const std::vector<std::uint32_t>& targets) {
        std::size_t start = 0;
        for (auto t : targets)
            start = std::max(start, ready[t]);
        for (auto t : targets)
            ready[t] = start + 1;
        stats.depth = std::max(stats.depth, start + 1);
    };

    for (const auto& op : circuit.ops()) {
        switch (op.code) {
          case OpCode::H:
          case OpCode::S:
          case OpCode::SDG:
          case OpCode::X:
          case OpCode::Y:
          case OpCode::Z:
            ++stats.oneQubitGates;
            schedule(op.targets);
            break;
          case OpCode::CX:
          case OpCode::CZ:
          case OpCode::SWAP:
            ++stats.twoQubitGates;
            schedule(op.targets);
            break;
          case OpCode::M:
            ++stats.measurements;
            schedule(op.targets);
            break;
          case OpCode::R:
            ++stats.resets;
            schedule(op.targets);
            break;
          case OpCode::MR:
            ++stats.measurements;
            ++stats.resets;
            schedule(op.targets);
            break;
          case OpCode::X_ERROR:
          case OpCode::Z_ERROR:
          case OpCode::PAULI1:
          case OpCode::DEPOL1:
          case OpCode::DEPOL2:
            ++stats.noiseSites;
            break;
          case OpCode::DETECTOR:
          case OpCode::OBSERVABLE:
            break;
        }
    }
    return stats;
}

std::uint64_t
hashCircuit(const Circuit& circuit)
{
    std::uint64_t h = 1469598103934665603ull; // FNV offset basis
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull; // FNV prime
    };
    mix(circuit.numQubits());
    for (const auto& op : circuit.ops()) {
        mix(static_cast<std::uint64_t>(op.code));
        mix(op.id);
        mix(op.targets.size());
        for (auto t : op.targets)
            mix(t);
        mix(op.params.size());
        for (double p : op.params) {
            std::uint64_t bits;
            std::memcpy(&bits, &p, sizeof bits);
            mix(bits);
        }
    }
    return h;
}

} // namespace stab
} // namespace hetarch
