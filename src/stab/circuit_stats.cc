#include "stab/circuit_stats.hh"

#include <algorithm>
#include <vector>

namespace hetarch {
namespace stab {

CircuitStats
analyzeCircuit(const Circuit& circuit)
{
    CircuitStats stats;
    stats.qubits = circuit.numQubits();
    stats.detectors = circuit.numDetectors();

    std::vector<std::size_t> ready(circuit.numQubits(), 0);
    auto schedule = [&](const std::vector<std::uint32_t>& targets) {
        std::size_t start = 0;
        for (auto t : targets)
            start = std::max(start, ready[t]);
        for (auto t : targets)
            ready[t] = start + 1;
        stats.depth = std::max(stats.depth, start + 1);
    };

    for (const auto& op : circuit.ops()) {
        switch (op.code) {
          case OpCode::H:
          case OpCode::S:
          case OpCode::SDG:
          case OpCode::X:
          case OpCode::Y:
          case OpCode::Z:
            ++stats.oneQubitGates;
            schedule(op.targets);
            break;
          case OpCode::CX:
          case OpCode::CZ:
          case OpCode::SWAP:
            ++stats.twoQubitGates;
            schedule(op.targets);
            break;
          case OpCode::M:
            ++stats.measurements;
            schedule(op.targets);
            break;
          case OpCode::R:
            ++stats.resets;
            schedule(op.targets);
            break;
          case OpCode::MR:
            ++stats.measurements;
            ++stats.resets;
            schedule(op.targets);
            break;
          case OpCode::X_ERROR:
          case OpCode::Z_ERROR:
          case OpCode::PAULI1:
          case OpCode::DEPOL1:
          case OpCode::DEPOL2:
            ++stats.noiseSites;
            break;
          case OpCode::DETECTOR:
          case OpCode::OBSERVABLE:
            break;
        }
    }
    return stats;
}

} // namespace stab
} // namespace hetarch
