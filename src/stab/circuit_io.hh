/**
 * @file
 * Text serialization for circuits: parse the format Circuit::toString
 * emits (a Stim-like line-per-op dialect), so circuits can be stored
 * in files, diffed, and shared between tools.
 *
 * Grammar (one op per line, '#' starts a comment):
 *   H 0            S 1            CX 0 1         SWAP 2 3
 *   M 0            R 1            MR 2
 *   X_ERROR p=0.01 0
 *   PAULI_CHANNEL_1 p=0.01 p=0.02 p=0.03 4
 *   DEPOLARIZE2 p=0.001 0 1
 *   DETECTOR 3 4            # measurement-record indices
 *   OBSERVABLE_INCLUDE(0) 5
 *
 * Stim-style broadcast target lists are accepted on input: single-qubit
 * ops take any number of targets ("M 0 1 2") and two-qubit ops an even
 * number of pair targets ("CX 0 1 2 3"); both are split into canonical
 * one/two-target ops.  All validation happens at parse time with
 * line-numbered diagnostics: unknown ops, wrong arity, self-paired
 * two-qubit ops, noise probabilities outside [0,1] (including
 * PAULI_CHANNEL_1 triples summing past 1), and DETECTOR /
 * OBSERVABLE_INCLUDE references to measurements that do not exist yet.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "stab/circuit.hh"

namespace hetarch {
namespace stab {

/**
 * Parse a circuit from text.  Fatal on malformed input (unknown op,
 * bad argument counts, out-of-range record references).
 */
Circuit parseCircuit(const std::string& text);

/**
 * Non-fatal parseCircuit for long-running callers (the job service's
 * admission validation): on success @p out holds the circuit and true
 * is returned; on malformed input @p error holds the line-numbered
 * diagnostic and false is returned.  Same grammar and validation as
 * parseCircuit — implemented by capturing its fatal path
 * (ScopedFatalCapture), so the two can never drift apart.
 */
bool tryParseCircuit(const std::string& text, Circuit& out,
                     std::string& error);

/** Round-trip helper: parse(toString(c)) must reproduce c's ops. */
bool circuitsEquivalent(const Circuit& a, const Circuit& b);

} // namespace stab
} // namespace hetarch
