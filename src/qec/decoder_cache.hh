/**
 * @file
 * Shared, immutable decoding setup for Monte-Carlo experiments, plus a
 * process-wide cache of setups keyed on circuit content.
 *
 * Building the detector error model and the decoding graphs is the
 * serial prefix of every memory experiment; chunk-parallel decoding
 * wants exactly one of each, shared read-only by all chunks.  Design-
 * space sweeps additionally re-evaluate the same circuit shape many
 * times (e.g. every code pair of Table 4 re-prepares the same code's
 * logical state), so setups are cached across calls.
 *
 * The cache is transparent: construction is deterministic, so a hit
 * returns a setup bit-identical to what a fresh build would produce.
 */

#pragma once

#include <cstdint>
#include <memory>

#include "lint/faults.hh"
#include "qec/dem_decoder.hh"
#include "qec/union_find.hh"
#include "stab/circuit.hh"
#include "stab/dem.hh"
#include "stab/frame_program.hh"

namespace hetarch {
namespace qec {

/** Decoder selection for runMemoryExperiment. */
enum class DecoderKind
{
    /** Weighted union-find on the tagged matching graphs. */
    UnionFind,
    /** Greedy DEM decoder (handles hyperedge mechanisms). */
    GreedyDem,
};

/**
 * Everything shot-independent about decoding one circuit: the DEM
 * and, per decoder kind, either the two tagged matching graphs (with
 * the observable-carrier vote already taken) or the greedy decoder's
 * lookup structures.  Immutable after build(); safe to share across
 * threads.
 */
struct DecoderSetup
{
    stab::DetectorErrorModel dem;

    /**
     * The circuit lowered once into a frame program (see
     * frame_program.hh); every sampling chunk of a memory experiment
     * shares it instead of re-scanning the op list per batch.
     */
    std::shared_ptr<const stab::FrameProgram> program;

    // Union-find path.
    DecodingGraph graphZ;
    DecodingGraph graphX;
    /** Whether the Z-detector graph carries the logical observable. */
    bool zCarriesObservable = true;

    // Greedy-DEM path (references `dem`, hence the stable storage).
    std::unique_ptr<DemDecoder> greedy;

    DecoderSetup() = default;
    DecoderSetup(const DecoderSetup&) = delete;
    DecoderSetup& operator=(const DecoderSetup&) = delete;

    /** Build the setup for @p circuit / @p kind (no caching). */
    static std::shared_ptr<const DecoderSetup>
    build(const stab::Circuit& circuit, DecoderKind kind);
};

/**
 * Process-wide setup cache keyed on (circuit content, decoder kind).
 * Thread-safe; bounded (evicts wholesale when over capacity, since
 * sweeps touch each shape in bursts).
 */
class DecoderCache
{
  public:
    static DecoderCache& instance();

    /** Cached or freshly built setup for @p circuit / @p kind. */
    std::shared_ptr<const DecoderSetup> get(const stab::Circuit& circuit,
                                            DecoderKind kind);

    /**
     * Cached static fault analysis of @p circuit
     * (lint::analyzeCircuitFaults).  When a decoder setup for the same
     * circuit is already cached, its DEM is reused instead of being
     * rebuilt — the fault graph shares the serial prefix of the
     * decoding pipeline.  Build-once semantics match get().
     */
    std::shared_ptr<const lint::FaultAnalysis>
    faultAnalysis(const stab::Circuit& circuit,
                  const lint::FaultOptions& options = {});

    /** Drop all cached setups. */
    void clear();
    /** Number of cached setups (decoder and fault entries). */
    std::size_t size() const;
    /** Cache hits since construction (for tests and perf reports). */
    std::size_t hits() const;

  private:
    struct Impl;
    DecoderCache();
    ~DecoderCache();
    std::unique_ptr<Impl> impl;
};

/** Content hash of a circuit (structure, targets, noise parameters). */
std::uint64_t hashCircuit(const stab::Circuit& circuit);

} // namespace qec
} // namespace hetarch
