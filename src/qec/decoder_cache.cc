#include "qec/decoder_cache.hh"

#include <future>
#include <mutex>
#include <unordered_map>

#include "core/logging.hh"
#include "obs/obs.hh"
#include "qec/surface_circuit.hh"
#include "stab/circuit_stats.hh"

namespace hetarch {
namespace qec {

namespace {

// Telemetry.  get() counts a miss exactly when it claims the build of
// a previously-absent key, so the hit/miss split depends only on the
// sequence of distinct circuits — not on which thread wins a race —
// and stays bit-identical across worker counts while no eviction
// occurs (working set within capacity).
obs::Counter& cCacheHits = obs::counter("qec.decoder_cache.hits");
obs::Counter& cCacheMisses = obs::counter("qec.decoder_cache.misses");
obs::Counter& cCacheEvictions = obs::counter("qec.decoder_cache.evictions");
obs::Counter& cFaultHits = obs::counter("qec.decoder_cache.fault_hits");
obs::Counter& cFaultMisses = obs::counter("qec.decoder_cache.fault_misses");

} // namespace

std::uint64_t
hashCircuit(const stab::Circuit& circuit)
{
    // Canonical implementation lives with the circuit IR so every
    // cache (decoder setups, fault analyses, schedule analyses) keys
    // on the identical content hash.
    return stab::hashCircuit(circuit);
}

std::shared_ptr<const DecoderSetup>
DecoderSetup::build(const stab::Circuit& circuit, DecoderKind kind)
{
    auto setup = std::make_shared<DecoderSetup>();
    setup->dem = stab::buildDetectorErrorModel(circuit);
    setup->program = stab::FrameProgram::compile(circuit);

    if (kind == DecoderKind::GreedyDem) {
        // The decoder keeps a reference to setup->dem, which lives at
        // a stable address inside the shared_ptr from here on.
        setup->greedy = std::make_unique<DemDecoder>(setup->dem);
        return setup;
    }

    // Union-find path: decode the two tagged graphs independently.
    // Exactly one graph carries the logical observable: the one whose
    // detector class co-occurs with observable-flipping mechanisms
    // (Z-stabilizer detectors for memory-Z, X for memory-X).  Detect
    // it from the DEM instead of assuming a basis.
    const auto& tags = circuit.detectorTags();
    // Vote with mechanisms whose detectors sit *exclusively* in one
    // class: a pure Z error (X-detector-only) can never flip logical Z,
    // so for memory-Z the exclusive observable flippers all live in the
    // Z-detector class (and symmetrically for memory-X).
    double obs_votes[2] = {0.0, 0.0};
    for (const auto& mech : setup->dem.mechanisms) {
        if (!mech.observables || mech.detectors.empty())
            continue;
        const auto first_tag = tags[mech.detectors.front()];
        bool exclusive = true;
        for (auto d : mech.detectors)
            exclusive = exclusive && tags[d] == first_tag;
        if (exclusive)
            obs_votes[first_tag == kTagX ? 1 : 0] += mech.probability;
    }
    setup->zCarriesObservable = obs_votes[0] >= obs_votes[1];
    setup->graphZ = DecodingGraph::fromDem(setup->dem, tags, kTagZ,
                                           setup->zCarriesObservable);
    setup->graphX = DecodingGraph::fromDem(setup->dem, tags, kTagX,
                                           !setup->zCarriesObservable);
    return setup;
}

struct DecoderCache::Impl
{
    struct Key
    {
        std::uint64_t hash;
        std::uint64_t numOps;
        std::uint64_t numDetectors;
        DecoderKind kind;

        bool operator==(const Key& other) const
        {
            return hash == other.hash && numOps == other.numOps &&
                   numDetectors == other.numDetectors &&
                   kind == other.kind;
        }
    };

    struct KeyHash
    {
        std::size_t operator()(const Key& k) const
        {
            return static_cast<std::size_t>(
                k.hash ^ (k.numOps * 0x9e3779b97f4a7c15ull) ^
                (static_cast<std::uint64_t>(k.kind) << 62));
        }
    };

    /** Whole-cache eviction threshold; sweeps touch shapes in bursts. */
    static constexpr std::size_t kCapacity = 128;

    /**
     * Entries hold futures, not finished setups: the first requester
     * of a key claims the build and every concurrent requester waits
     * on the same future, so each key is built exactly once.
     */
    using SetupFuture =
        std::shared_future<std::shared_ptr<const DecoderSetup>>;

    /** Fault analyses are keyed on circuit content plus options. */
    struct FaultKey
    {
        std::uint64_t hash;
        std::uint64_t numOps;
        std::uint64_t numDetectors;
        std::uint64_t maxWeight;
        bool unionBound;

        bool operator==(const FaultKey& other) const
        {
            return hash == other.hash && numOps == other.numOps &&
                   numDetectors == other.numDetectors &&
                   maxWeight == other.maxWeight &&
                   unionBound == other.unionBound;
        }
    };

    struct FaultKeyHash
    {
        std::size_t operator()(const FaultKey& k) const
        {
            return static_cast<std::size_t>(
                k.hash ^ (k.numOps * 0x9e3779b97f4a7c15ull) ^
                (k.maxWeight * 0xff51afd7ed558ccdull) ^
                (static_cast<std::uint64_t>(k.unionBound) << 63));
        }
    };

    using FaultFuture =
        std::shared_future<std::shared_ptr<const lint::FaultAnalysis>>;

    mutable std::mutex mutex;
    std::unordered_map<Key, SetupFuture, KeyHash> entries;
    std::unordered_map<FaultKey, FaultFuture, FaultKeyHash> faultEntries;
    std::size_t hitCount = 0;
};

DecoderCache::DecoderCache() : impl(std::make_unique<Impl>()) {}
DecoderCache::~DecoderCache() = default;

DecoderCache&
DecoderCache::instance()
{
    static DecoderCache cache;
    return cache;
}

std::shared_ptr<const DecoderSetup>
DecoderCache::get(const stab::Circuit& circuit, DecoderKind kind)
{
    const Impl::Key key{qec::hashCircuit(circuit), circuit.ops().size(),
                        circuit.numDetectors(), kind};
    std::promise<std::shared_ptr<const DecoderSetup>> promise;
    Impl::SetupFuture future;
    {
        std::lock_guard<std::mutex> lock(impl->mutex);
        auto it = impl->entries.find(key);
        if (it != impl->entries.end()) {
            ++impl->hitCount;
            cCacheHits.add();
            future = it->second;
        } else {
            cCacheMisses.add();
            if (impl->entries.size() >= Impl::kCapacity) {
                cCacheEvictions.add(impl->entries.size());
                impl->entries.clear();
            }
            impl->entries.emplace(key, promise.get_future().share());
        }
    }
    if (future.valid()) {
        // A concurrent builder may still be working; wait for its
        // result (never the pool's caller building it — the builder
        // runs on its own thread and needs no help to finish).
        return future.get();
    }
    // This thread claimed the build; do it outside the lock.  Setups
    // are deterministic, so waiters get exactly what a fresh build
    // would produce.
    auto setup = DecoderSetup::build(circuit, kind);
    promise.set_value(setup);
    return setup;
}

std::shared_ptr<const lint::FaultAnalysis>
DecoderCache::faultAnalysis(const stab::Circuit& circuit,
                            const lint::FaultOptions& options)
{
    const Impl::FaultKey key{qec::hashCircuit(circuit),
                             circuit.ops().size(),
                             circuit.numDetectors(), options.maxWeight,
                             options.unionBound};
    std::promise<std::shared_ptr<const lint::FaultAnalysis>> promise;
    Impl::FaultFuture future;
    Impl::SetupFuture setup_future;
    {
        std::lock_guard<std::mutex> lock(impl->mutex);
        auto it = impl->faultEntries.find(key);
        if (it != impl->faultEntries.end()) {
            ++impl->hitCount;
            cFaultHits.add();
            future = it->second;
        } else {
            cFaultMisses.add();
            if (impl->faultEntries.size() >= Impl::kCapacity)
                impl->faultEntries.clear();
            impl->faultEntries.emplace(key, promise.get_future().share());
            // Reuse the DEM of an already-cached decoder setup for the
            // same circuit (either kind) instead of rebuilding it.
            for (auto kind : {DecoderKind::UnionFind,
                              DecoderKind::GreedyDem}) {
                const Impl::Key setup_key{key.hash, key.numOps,
                                          key.numDetectors, kind};
                auto sit = impl->entries.find(setup_key);
                if (sit != impl->entries.end()) {
                    setup_future = sit->second;
                    break;
                }
            }
        }
    }
    if (future.valid())
        return future.get();

    // This thread claimed the build.  The analyzer is deterministic,
    // so waiters get exactly what a fresh run would produce.
    std::shared_ptr<const lint::FaultAnalysis> analysis;
    if (setup_future.valid()) {
        const auto setup = setup_future.get();
        analysis = std::make_shared<const lint::FaultAnalysis>(
            lint::analyzeFaults(setup->dem, options));
    } else {
        analysis = std::make_shared<const lint::FaultAnalysis>(
            lint::analyzeCircuitFaults(circuit, options));
    }
    promise.set_value(analysis);
    return analysis;
}

void
DecoderCache::clear()
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->entries.clear();
    impl->faultEntries.clear();
}

std::size_t
DecoderCache::size() const
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    return impl->entries.size() + impl->faultEntries.size();
}

std::size_t
DecoderCache::hits() const
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    return impl->hitCount;
}

} // namespace qec
} // namespace hetarch
