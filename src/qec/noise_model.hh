/**
 * @file
 * Circuit-level noise parameterization.
 *
 * Decoherence during idle periods is converted to a Pauli channel via
 * the standard Pauli twirl of amplitude+phase damping:
 *   px = py = (1 - e^{-t/T1}) / 4
 *   pz = (1 - e^{-t/T2}) / 2 - (1 - e^{-t/T1}) / 4
 * Gates carry depolarizing noise; measurement may flip classically.
 * Times follow the paper's Section 4 defaults: 100 ns two-qubit gates,
 * 40 ns single-qubit gates, 1 us error-free readout.
 */

#pragma once

#include "core/units.hh"

namespace hetarch {
namespace qec {

/** Pauli-twirled idle channel probabilities. */
struct PauliIdle
{
    double px = 0.0;
    double py = 0.0;
    double pz = 0.0;
};

/** Twirl T1/T2 decay over duration @p t_ns into Pauli probabilities. */
PauliIdle idleTwirl(double t_ns, double t1_ns, double t2_ns);

/** Full circuit-noise parameter set for syndrome-extraction circuits. */
struct CircuitNoise
{
    // Device coherences (ns).  "Data" and "ancilla" let the surface
    // code study (Section 4.2.1) make the two compute classes
    // heterogeneous; for storage-backed modules dataT1/T2 describe the
    // storage device.
    double dataT1 = 100.0 * units::us;
    double dataT2 = 100.0 * units::us;
    double ancT1 = 100.0 * units::us;
    double ancT2 = 100.0 * units::us;

    // Operation durations (ns).
    double t1q = 40.0;
    double t2q = 100.0;
    double tMeas = 1.0 * units::us;

    // Gate error rates (depolarizing).
    double p1 = 1e-3;
    double p2 = 1e-2;

    // Classical measurement flip probability (paper: error-free).
    double pMeasFlip = 0.0;

    /** Idle twirl for a data qubit over @p t_ns. */
    PauliIdle dataIdle(double t_ns) const
    {
        return idleTwirl(t_ns, dataT1, dataT2);
    }
    /** Idle twirl for an ancilla qubit over @p t_ns. */
    PauliIdle ancIdle(double t_ns) const
    {
        return idleTwirl(t_ns, ancT1, ancT2);
    }
};

} // namespace qec
} // namespace hetarch
