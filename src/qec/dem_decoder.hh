/**
 * @file
 * Greedy maximum-likelihood-ish decoder operating directly on a
 * detector error model.
 *
 * For the small codes run on the Universal Error Correction module
 * (Steane, Reed-Muller, color codes), single error mechanisms dominate
 * at the operating error rates.  This decoder matches a syndrome
 * against single mechanisms exactly and falls back to a greedy
 * set-cover over mechanisms for multi-error syndromes.  Unlike
 * matching decoders it handles mechanisms that flip three or more
 * detectors, which non-surface codes produce generically.
 */

#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "stab/dem.hh"

namespace hetarch {
namespace qec {

/** Greedy DEM-based decoder. */
class DemDecoder
{
  public:
    explicit DemDecoder(const stab::DetectorErrorModel& dem);

    /**
     * Decode a full detector event vector; returns the predicted
     * observable mask.  Reference entry point: const and thread-safe,
     * but scans all detectors and allocates the residual per call.
     */
    std::uint32_t decode(const std::vector<std::uint8_t>& detectors) const;

    /**
     * Decode a sparse syndrome given as the ascending list of fired
     * detector ids.  Bit-identical to decode() on the equivalent dense
     * vector (the algorithm is inherently sparse; decode() merely
     * builds this list first).  Reuses internal buffers, so it is not
     * const and must not be called concurrently on one instance.
     */
    std::uint32_t decodeSparse(std::span<const std::uint32_t> fired);

    /**
     * As above, with caller-provided scratch: const and thread-safe,
     * so chunk workers can share one cached decoder and keep their
     * residual buffers thread-local.
     */
    std::uint32_t decodeSparse(std::span<const std::uint32_t> fired,
                               std::vector<std::uint32_t>& residual,
                               std::vector<std::uint32_t>& next) const;

    /**
     * Decode a block of sparse syndromes, writing shot i's predicted
     * observable mask to @p out[i].  Output-identical to per-shot
     * decodeSparse() (each decode is a pure function of its fired
     * list); shots are sorted by ascending syndrome weight then
     * lexicographically so identical syndromes are decoded once and
     * their masks reused.  Const and thread-safe: all scratch
     * (@p residual, @p next, @p order) is caller-provided, so chunk
     * workers can share one cached decoder.  Returns the number of
     * duplicate-reuse skips.
     */
    std::size_t decodeBatch(std::span<const std::vector<std::uint32_t>>
                                fired,
                            std::span<std::uint32_t> out,
                            std::vector<std::uint32_t>& residual,
                            std::vector<std::uint32_t>& next,
                            std::vector<std::uint32_t>& order) const;

  private:
    std::uint32_t decodeResidual(std::vector<std::uint32_t>& residual,
                                 std::vector<std::uint32_t>& next) const;

    const stab::DetectorErrorModel& model;
    /** Exact single-mechanism lookup: detector signature -> best mech. */
    std::map<std::vector<std::uint32_t>, std::size_t> exact;
    /** Mechanisms sorted by descending probability (for greedy pass). */
    std::vector<std::size_t> byProbability;
    /** Reused scratch for decodeSparse (cleared, never shrunk). */
    std::vector<std::uint32_t> residualBuf;
    std::vector<std::uint32_t> nextBuf;
};

} // namespace qec
} // namespace hetarch
