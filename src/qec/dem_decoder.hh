/**
 * @file
 * Greedy maximum-likelihood-ish decoder operating directly on a
 * detector error model.
 *
 * For the small codes run on the Universal Error Correction module
 * (Steane, Reed-Muller, color codes), single error mechanisms dominate
 * at the operating error rates.  This decoder matches a syndrome
 * against single mechanisms exactly and falls back to a greedy
 * set-cover over mechanisms for multi-error syndromes.  Unlike
 * matching decoders it handles mechanisms that flip three or more
 * detectors, which non-surface codes produce generically.
 */

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "stab/dem.hh"

namespace hetarch {
namespace qec {

/** Greedy DEM-based decoder. */
class DemDecoder
{
  public:
    explicit DemDecoder(const stab::DetectorErrorModel& dem);

    /**
     * Decode a full detector event vector; returns the predicted
     * observable mask.
     */
    std::uint32_t decode(const std::vector<std::uint8_t>& detectors) const;

  private:
    const stab::DetectorErrorModel& model;
    /** Exact single-mechanism lookup: detector signature -> best mech. */
    std::map<std::vector<std::uint32_t>, std::size_t> exact;
    /** Mechanisms sorted by descending probability (for greedy pass). */
    std::vector<std::size_t> byProbability;
};

} // namespace qec
} // namespace hetarch
