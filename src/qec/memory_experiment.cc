#include "qec/memory_experiment.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "core/logging.hh"
#include "exec/shot_scheduler.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"
#include "qec/sliding_window.hh"
#include "qec/surface_circuit.hh"
#include "stab/dem.hh"

namespace hetarch {
namespace qec {

namespace {

// Telemetry.  Counters and the syndrome-weight histogram are functions
// of the sampled data alone, hence thread-count invariant; only the
// chunk-decode timer varies between runs.
obs::Counter& cShotsDecoded = obs::counter("qec.decode.shots");
obs::Counter& cLogicalFailures = obs::counter("qec.decode.logical_failures");
obs::Counter& cTrivialShots = obs::counter("qec.decode.trivial_shots");
// Shot-batched decode telemetry.  Blocks have the fixed
// SlidingWindowDecoder::kDecodeBlockWords granularity and dedup hits
// depend on the sampled syndromes alone, so all three are invariant
// under worker count and sampler SIMD width.
obs::Counter& cBatchBlocks = obs::counter("qec.decode.batch_blocks");
obs::Counter& cBatchShots = obs::counter("qec.decode.batch_shots");
obs::Counter& cBatchDedupHits =
    obs::counter("qec.decode.batch_dedup_hits");
obs::Counter& cShotsCompleted =
    obs::counter("exec.scheduler.shots_completed");
obs::Histogram& hSyndromeWeight = obs::histogram("qec.syndrome_weight");
obs::Histogram& hDecodeChunkNs = obs::histogram("qec.decode_chunk_ns");

/** Publish one kernel's accumulated batch-decode stats. */
void
publishBatchStats(const SlidingWindowDecoder::Stats& st)
{
    cBatchBlocks.add(st.batchBlocks);
    cBatchShots.add(st.batchShots);
    cBatchDedupHits.add(st.dedupHits);
}

} // namespace

double
MemoryResult::perRound() const
{
    const double p_shot = perShot();
    if (rounds <= 1)
        return p_shot;
    // Invert P_shot = (1 - (1 - 2 p)^R) / 2; clamp for the noisy-sample
    // case p_shot >= 0.5.
    const double inner = 1.0 - 2.0 * std::min(p_shot, 0.4999);
    return 0.5 * (1.0 - std::pow(inner, 1.0 / static_cast<double>(rounds)));
}

std::size_t
countLogicalFailures(const DecoderSetup& setup, DecoderKind decoder,
                     const stab::DetectorSamples& samples)
{
    obs::ScopedTimer timer(hDecodeChunkNs);

    // The decode kernel is local to the chunk: construction is cheap
    // (it only binds the shared graphs) and all per-decode arena state
    // stays on this thread.  The shot-batched buffer entry produces
    // the exact failures / trivial counts / weight records of the
    // historical per-word loop while amortizing the decoder arena over
    // 256-shot blocks.
    SlidingWindowDecoder kernel(setup, decoder);
    const std::size_t failures = kernel.decodeBuffer(samples);

    hSyndromeWeight.merge(kernel.stats().syndromeWeights);
    cShotsDecoded.add(samples.shots);
    cLogicalFailures.add(failures);
    cTrivialShots.add(kernel.stats().trivialShots);
    publishBatchStats(kernel.stats());
    return failures;
}

MemoryResult
runMemoryExperiment(const stab::Circuit& circuit, std::size_t shots,
                    std::size_t rounds, DecoderKind decoder, Rng& rng)
{
    MemoryResult result;
    result.shots = shots;
    result.rounds = rounds;
    if (shots == 0)
        return result;

    const auto setup = DecoderCache::instance().get(circuit, decoder);

    // One draw fixes the experiment's base stream; every chunk derives
    // its generator from (base, chunkIndex), so the partition — and
    // with it the result — is independent of how chunks are scheduled.
    const std::uint64_t base = rng();
    const exec::ShotScheduler sched(shots);
    std::vector<std::size_t> failures(sched.numChunks(), 0);
    exec::parallelFor(sched.numChunks(), [&](std::size_t i) {
        const auto chunk = sched.chunk(i);
        Rng chunk_rng = exec::ShotScheduler::chunkRng(base, chunk.index);
        // Sample the chunk with the word-parallel block sampler, then
        // decode it through the shot-batched buffer entry.  The chunk
        // buffer is bounded (<= kDefaultChunkShots shots, a few packed
        // words per detector), and RNG-consumption parity makes the
        // sampled bits — and hence the failures and every
        // data-dependent counter — identical to the streamed
        // round-by-round path at any worker count or SIMD width.
        const stab::FrameSimulator frame(setup->program);
        const auto samples = frame.sampleDetectors(chunk.count, chunk_rng);
        SlidingWindowDecoder kernel(*setup, decoder);
        failures[i] = kernel.decodeBuffer(samples);
        const auto& st = kernel.stats();
        hSyndromeWeight.merge(st.syndromeWeights);
        if (obs::timingEnabled())
            hDecodeChunkNs.record(st.decodeNs);
        cShotsDecoded.add(chunk.count);
        cLogicalFailures.add(failures[i]);
        cTrivialShots.add(st.trivialShots);
        publishBatchStats(st);
        cShotsCompleted.add(chunk.count);
    });
    for (auto f : failures)
        result.failures += f;
    return result;
}

double
surfaceLogicalErrorPerRound(std::size_t distance, std::size_t rounds,
                            const CircuitNoise& noise, std::size_t shots,
                            std::uint64_t seed)
{
    const auto circuit = surfaceMemoryZ(distance, rounds, noise);
    Rng rng(seed);
    const auto result = runMemoryExperiment(circuit, shots, rounds,
                                            DecoderKind::UnionFind, rng);
    return result.perRound();
}

} // namespace qec
} // namespace hetarch
