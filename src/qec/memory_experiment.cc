#include "qec/memory_experiment.hh"

#include <cmath>
#include <vector>

#include "core/logging.hh"
#include "exec/shot_scheduler.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"
#include "qec/surface_circuit.hh"
#include "stab/dem.hh"

namespace hetarch {
namespace qec {

namespace {

// Telemetry.  Counters and the syndrome-weight histogram are functions
// of the sampled data alone, hence thread-count invariant; only the
// chunk-decode timer varies between runs.
obs::Counter& cShotsDecoded = obs::counter("qec.decode.shots");
obs::Counter& cLogicalFailures = obs::counter("qec.decode.logical_failures");
obs::Counter& cShotsCompleted =
    obs::counter("exec.scheduler.shots_completed");
obs::Histogram& hSyndromeWeight = obs::histogram("qec.syndrome_weight");
obs::Histogram& hDecodeChunkNs = obs::histogram("qec.decode_chunk_ns");

} // namespace

double
MemoryResult::perRound() const
{
    const double p_shot = perShot();
    if (rounds <= 1)
        return p_shot;
    // Invert P_shot = (1 - (1 - 2 p)^R) / 2; clamp for the noisy-sample
    // case p_shot >= 0.5.
    const double inner = 1.0 - 2.0 * std::min(p_shot, 0.4999);
    return 0.5 * (1.0 - std::pow(inner, 1.0 / static_cast<double>(rounds)));
}

std::size_t
countLogicalFailures(const DecoderSetup& setup, DecoderKind decoder,
                     const stab::DetectorSamples& samples)
{
    std::size_t failures = 0;
    std::vector<std::uint8_t> syndrome(samples.numDetectors);
    // Accumulated off the hot loop, merged as a handful of atomic adds.
    obs::LocalHistogram weights;
    obs::ScopedTimer timer(hDecodeChunkNs);

    if (decoder == DecoderKind::GreedyDem) {
        for (std::size_t s = 0; s < samples.shots; ++s) {
            std::uint64_t weight = 0;
            for (std::size_t d = 0; d < samples.numDetectors; ++d) {
                syndrome[d] = samples.det(s, d);
                weight += syndrome[d];
            }
            weights.record(weight);
            const auto predicted = setup.greedy->decode(syndrome);
            const auto actual =
                static_cast<std::uint32_t>(samples.obs(s, 0));
            if ((predicted & 1u) != actual)
                ++failures;
        }
    } else {
        // Decoder instances are local to the chunk: construction is
        // cheap (they only bind the shared graphs) and all per-decode
        // scratch state stays on this thread.
        UnionFindDecoder dec_z(setup.graphZ);
        UnionFindDecoder dec_x(setup.graphX);
        for (std::size_t s = 0; s < samples.shots; ++s) {
            std::uint64_t weight = 0;
            for (std::size_t d = 0; d < samples.numDetectors; ++d) {
                syndrome[d] = samples.det(s, d);
                weight += syndrome[d];
            }
            weights.record(weight);
            std::uint32_t predicted = 0;
            if (setup.graphZ.numNodes())
                predicted ^=
                    dec_z.decode(setup.graphZ.projectSyndrome(syndrome));
            if (setup.graphX.numNodes())
                predicted ^=
                    dec_x.decode(setup.graphX.projectSyndrome(syndrome));
            const auto actual =
                static_cast<std::uint32_t>(samples.obs(s, 0));
            if ((predicted & 1u) != actual)
                ++failures;
        }
    }

    hSyndromeWeight.merge(weights);
    cShotsDecoded.add(samples.shots);
    cLogicalFailures.add(failures);
    return failures;
}

MemoryResult
runMemoryExperiment(const stab::Circuit& circuit, std::size_t shots,
                    std::size_t rounds, DecoderKind decoder, Rng& rng)
{
    MemoryResult result;
    result.shots = shots;
    result.rounds = rounds;
    if (shots == 0)
        return result;

    const auto setup = DecoderCache::instance().get(circuit, decoder);
    const stab::FrameSimulator frame(circuit);

    // One draw fixes the experiment's base stream; every chunk derives
    // its generator from (base, chunkIndex), so the partition — and
    // with it the result — is independent of how chunks are scheduled.
    const std::uint64_t base = rng();
    const exec::ShotScheduler sched(shots);
    std::vector<std::size_t> failures(sched.numChunks(), 0);
    exec::parallelFor(sched.numChunks(), [&](std::size_t i) {
        const auto chunk = sched.chunk(i);
        Rng chunk_rng = exec::ShotScheduler::chunkRng(base, chunk.index);
        const auto samples = frame.sampleDetectors(chunk.count, chunk_rng);
        failures[i] = countLogicalFailures(*setup, decoder, samples);
        cShotsCompleted.add(chunk.count);
    });
    for (auto f : failures)
        result.failures += f;
    return result;
}

double
surfaceLogicalErrorPerRound(std::size_t distance, std::size_t rounds,
                            const CircuitNoise& noise, std::size_t shots,
                            std::uint64_t seed)
{
    const auto circuit = surfaceMemoryZ(distance, rounds, noise);
    Rng rng(seed);
    const auto result = runMemoryExperiment(circuit, shots, rounds,
                                            DecoderKind::UnionFind, rng);
    return result.perRound();
}

} // namespace qec
} // namespace hetarch
