#include "qec/memory_experiment.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "core/logging.hh"
#include "exec/shot_scheduler.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"
#include "qec/sliding_window.hh"
#include "qec/surface_circuit.hh"
#include "stab/dem.hh"

namespace hetarch {
namespace qec {

namespace {

// Telemetry.  Counters and the syndrome-weight histogram are functions
// of the sampled data alone, hence thread-count invariant; only the
// chunk-decode timer varies between runs.
obs::Counter& cShotsDecoded = obs::counter("qec.decode.shots");
obs::Counter& cLogicalFailures = obs::counter("qec.decode.logical_failures");
obs::Counter& cTrivialShots = obs::counter("qec.decode.trivial_shots");
obs::Counter& cShotsCompleted =
    obs::counter("exec.scheduler.shots_completed");
obs::Histogram& hSyndromeWeight = obs::histogram("qec.syndrome_weight");
obs::Histogram& hDecodeChunkNs = obs::histogram("qec.decode_chunk_ns");

} // namespace

double
MemoryResult::perRound() const
{
    const double p_shot = perShot();
    if (rounds <= 1)
        return p_shot;
    // Invert P_shot = (1 - (1 - 2 p)^R) / 2; clamp for the noisy-sample
    // case p_shot >= 0.5.
    const double inner = 1.0 - 2.0 * std::min(p_shot, 0.4999);
    return 0.5 * (1.0 - std::pow(inner, 1.0 / static_cast<double>(rounds)));
}

std::size_t
countLogicalFailures(const DecoderSetup& setup, DecoderKind decoder,
                     const stab::DetectorSamples& samples)
{
    obs::ScopedTimer timer(hDecodeChunkNs);

    // The decode kernel is local to the chunk: construction is cheap
    // (it only binds the shared graphs) and all per-decode arena state
    // stays on this thread.  Whole-buffer mode replays the historical
    // per-word-block loop exactly.
    SlidingWindowDecoder kernel(setup, decoder);
    std::size_t failures = 0;
    for (std::size_t w = 0; w < samples.numWords; ++w) {
        const std::size_t lanes =
            std::min<std::size_t>(64, samples.shots - w * 64);
        kernel.beginBatch(lanes);
        kernel.pushBufferColumn(samples, w);
        failures += kernel.finishBatch();
    }

    hSyndromeWeight.merge(kernel.stats().syndromeWeights);
    cShotsDecoded.add(samples.shots);
    cLogicalFailures.add(failures);
    cTrivialShots.add(kernel.stats().trivialShots);
    return failures;
}

MemoryResult
runMemoryExperiment(const stab::Circuit& circuit, std::size_t shots,
                    std::size_t rounds, DecoderKind decoder, Rng& rng)
{
    MemoryResult result;
    result.shots = shots;
    result.rounds = rounds;
    if (shots == 0)
        return result;

    const auto setup = DecoderCache::instance().get(circuit, decoder);

    // One draw fixes the experiment's base stream; every chunk derives
    // its generator from (base, chunkIndex), so the partition — and
    // with it the result — is independent of how chunks are scheduled.
    const std::uint64_t base = rng();
    const exec::ShotScheduler sched(shots);
    std::vector<std::size_t> failures(sched.numChunks(), 0);
    exec::parallelFor(sched.numChunks(), [&](std::size_t i) {
        const auto chunk = sched.chunk(i);
        Rng chunk_rng = exec::ShotScheduler::chunkRng(base, chunk.index);
        // Stream the chunk round-by-round through the whole-buffer
        // kernel instead of materializing a DetectorSamples buffer.
        // RNG-consumption parity makes the sampled bits — and hence
        // the failures and every data-dependent counter — identical
        // to the historical sample-then-decode path.
        stab::DetectorStream stream(setup->program, chunk.count);
        SlidingWindowDecoder kernel(*setup, decoder);
        stab::SyndromeBlock block;
        while (stream.next(chunk_rng, block)) {
            if (block.slice == 0)
                kernel.beginBatch(block.lanes);
            kernel.pushBlock(block);
            if (block.lastSliceOfBatch)
                failures[i] += kernel.finishBatch();
        }
        const auto& st = kernel.stats();
        hSyndromeWeight.merge(st.syndromeWeights);
        if (obs::timingEnabled())
            hDecodeChunkNs.record(st.decodeNs);
        cShotsDecoded.add(chunk.count);
        cLogicalFailures.add(failures[i]);
        cTrivialShots.add(st.trivialShots);
        cShotsCompleted.add(chunk.count);
    });
    for (auto f : failures)
        result.failures += f;
    return result;
}

double
surfaceLogicalErrorPerRound(std::size_t distance, std::size_t rounds,
                            const CircuitNoise& noise, std::size_t shots,
                            std::uint64_t seed)
{
    const auto circuit = surfaceMemoryZ(distance, rounds, noise);
    Rng rng(seed);
    const auto result = runMemoryExperiment(circuit, shots, rounds,
                                            DecoderKind::UnionFind, rng);
    return result.perRound();
}

} // namespace qec
} // namespace hetarch
