#include "qec/memory_experiment.hh"

#include <cmath>

#include "core/logging.hh"
#include "qec/dem_decoder.hh"
#include "qec/surface_circuit.hh"
#include "qec/union_find.hh"
#include "stab/dem.hh"
#include "stab/frame.hh"

namespace hetarch {
namespace qec {

double
MemoryResult::perRound() const
{
    const double p_shot = perShot();
    if (rounds <= 1)
        return p_shot;
    // Invert P_shot = (1 - (1 - 2 p)^R) / 2; clamp for the noisy-sample
    // case p_shot >= 0.5.
    const double inner = 1.0 - 2.0 * std::min(p_shot, 0.4999);
    return 0.5 * (1.0 - std::pow(inner, 1.0 / static_cast<double>(rounds)));
}

MemoryResult
runMemoryExperiment(const stab::Circuit& circuit, std::size_t shots,
                    std::size_t rounds, DecoderKind decoder, Rng& rng)
{
    const auto dem = stab::buildDetectorErrorModel(circuit);
    stab::FrameSimulator frame(circuit);
    const auto samples = frame.sampleDetectors(shots, rng);

    MemoryResult result;
    result.shots = shots;
    result.rounds = rounds;

    if (decoder == DecoderKind::GreedyDem) {
        DemDecoder dec(dem);
        std::vector<std::uint8_t> syndrome(samples.numDetectors);
        for (std::size_t s = 0; s < shots; ++s) {
            for (std::size_t d = 0; d < samples.numDetectors; ++d)
                syndrome[d] = samples.det(s, d);
            const auto predicted = dec.decode(syndrome);
            const auto actual =
                static_cast<std::uint32_t>(samples.obs(s, 0));
            if ((predicted & 1u) != actual)
                ++result.failures;
        }
        return result;
    }

    // Union-find path: decode the two tagged graphs independently.
    // Exactly one graph carries the logical observable: the one whose
    // detector class co-occurs with observable-flipping mechanisms
    // (Z-stabilizer detectors for memory-Z, X for memory-X).  Detect
    // it from the DEM instead of assuming a basis.
    const auto& tags = circuit.detectorTags();
    // Vote with mechanisms whose detectors sit *exclusively* in one
    // class: a pure Z error (X-detector-only) can never flip logical Z,
    // so for memory-Z the exclusive observable flippers all live in the
    // Z-detector class (and symmetrically for memory-X).
    double obs_votes[2] = {0.0, 0.0};
    for (const auto& mech : dem.mechanisms) {
        if (!mech.observables || mech.detectors.empty())
            continue;
        const auto first_tag = tags[mech.detectors.front()];
        bool exclusive = true;
        for (auto d : mech.detectors)
            exclusive = exclusive && tags[d] == first_tag;
        if (exclusive)
            obs_votes[first_tag == kTagX ? 1 : 0] += mech.probability;
    }
    const bool z_carries = obs_votes[0] >= obs_votes[1];
    const auto graph_z =
        DecodingGraph::fromDem(dem, tags, kTagZ, z_carries);
    const auto graph_x =
        DecodingGraph::fromDem(dem, tags, kTagX, !z_carries);
    UnionFindDecoder dec_z(graph_z);
    UnionFindDecoder dec_x(graph_x);

    std::vector<std::uint8_t> full(samples.numDetectors);
    for (std::size_t s = 0; s < shots; ++s) {
        for (std::size_t d = 0; d < samples.numDetectors; ++d)
            full[d] = samples.det(s, d);
        std::uint32_t predicted = 0;
        if (graph_z.numNodes())
            predicted ^= dec_z.decode(graph_z.projectSyndrome(full));
        if (graph_x.numNodes())
            predicted ^= dec_x.decode(graph_x.projectSyndrome(full));
        const auto actual = static_cast<std::uint32_t>(samples.obs(s, 0));
        if ((predicted & 1u) != actual)
            ++result.failures;
    }
    return result;
}

double
surfaceLogicalErrorPerRound(std::size_t distance, std::size_t rounds,
                            const CircuitNoise& noise, std::size_t shots,
                            std::uint64_t seed)
{
    const auto circuit = surfaceMemoryZ(distance, rounds, noise);
    Rng rng(seed);
    const auto result = runMemoryExperiment(circuit, shots, rounds,
                                            DecoderKind::UnionFind, rng);
    return result.perRound();
}

} // namespace qec
} // namespace hetarch
