#include "qec/memory_experiment.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "core/logging.hh"
#include "exec/shot_scheduler.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"
#include "qec/surface_circuit.hh"
#include "stab/dem.hh"

namespace hetarch {
namespace qec {

namespace {

// Telemetry.  Counters and the syndrome-weight histogram are functions
// of the sampled data alone, hence thread-count invariant; only the
// chunk-decode timer varies between runs.
obs::Counter& cShotsDecoded = obs::counter("qec.decode.shots");
obs::Counter& cLogicalFailures = obs::counter("qec.decode.logical_failures");
obs::Counter& cTrivialShots = obs::counter("qec.decode.trivial_shots");
obs::Counter& cShotsCompleted =
    obs::counter("exec.scheduler.shots_completed");
obs::Histogram& hSyndromeWeight = obs::histogram("qec.syndrome_weight");
obs::Histogram& hDecodeChunkNs = obs::histogram("qec.decode_chunk_ns");

} // namespace

double
MemoryResult::perRound() const
{
    const double p_shot = perShot();
    if (rounds <= 1)
        return p_shot;
    // Invert P_shot = (1 - (1 - 2 p)^R) / 2; clamp for the noisy-sample
    // case p_shot >= 0.5.
    const double inner = 1.0 - 2.0 * std::min(p_shot, 0.4999);
    return 0.5 * (1.0 - std::pow(inner, 1.0 / static_cast<double>(rounds)));
}

std::size_t
countLogicalFailures(const DecoderSetup& setup, DecoderKind decoder,
                     const stab::DetectorSamples& samples)
{
    std::size_t failures = 0;
    std::size_t trivial = 0;
    // Accumulated off the hot loop, merged as a handful of atomic adds.
    obs::LocalHistogram weights;
    obs::ScopedTimer timer(hDecodeChunkNs);

    const std::size_t n_obs = samples.numObservables;
    const std::uint32_t obs_mask =
        n_obs >= 32 ? 0xffffffffu
                    : (1u << static_cast<std::uint32_t>(n_obs)) - 1u;

    // Decoder instances are local to the chunk: construction is cheap
    // (they only bind the shared graphs) and all per-decode arena
    // state stays on this thread.  The greedy decoder stays shared
    // (its lookup tables are expensive) with thread-local residual
    // scratch instead.
    UnionFindDecoder dec_z(setup.graphZ);
    UnionFindDecoder dec_x(setup.graphX);
    std::vector<std::uint32_t> nodes;    // projected UF syndrome
    std::vector<std::uint32_t> residual; // greedy scratch
    std::vector<std::uint32_t> residual_next;

    // Fired-detector lists for the 64 shot lanes of one word block,
    // filled by one detector-major pass over the packed words.
    std::vector<std::vector<std::uint32_t>> fired(64);

    for (std::size_t w = 0; w < samples.numWords; ++w) {
        const std::size_t lanes =
            std::min<std::size_t>(64, samples.shots - w * 64);
        for (std::size_t l = 0; l < lanes; ++l)
            fired[l].clear();
        for (std::size_t d = 0; d < samples.numDetectors; ++d) {
            std::uint64_t word = samples.detWord(d, w);
            while (word) {
                const auto l =
                    static_cast<std::size_t>(std::countr_zero(word));
                word &= word - 1;
                fired[l].push_back(static_cast<std::uint32_t>(d));
            }
        }

        for (std::size_t l = 0; l < lanes; ++l) {
            const std::size_t s = w * 64 + l;
            const auto& f = fired[l]; // ascending detector ids
            weights.record(f.size());
            std::uint32_t predicted = 0;
            if (f.empty()) {
                // Weight-0 fast path: both decoders map the empty
                // syndrome to the zero correction, so skip them
                // entirely (no syndrome object, no decoder call).
                ++trivial;
            } else if (decoder == DecoderKind::GreedyDem) {
                predicted = setup.greedy->decodeSparse(f, residual,
                                                       residual_next);
            } else {
                if (setup.graphZ.numNodes()) {
                    nodes.clear();
                    setup.graphZ.projectSparse(f, nodes);
                    predicted ^= dec_z.decodeSparse(nodes);
                }
                if (setup.graphX.numNodes()) {
                    nodes.clear();
                    setup.graphX.projectSparse(f, nodes);
                    predicted ^= dec_x.decodeSparse(nodes);
                }
            }
            std::uint32_t actual = 0;
            for (std::size_t k = 0; k < n_obs && k < 32; ++k)
                actual |= static_cast<std::uint32_t>(samples.obs(s, k))
                          << k;
            if ((predicted & obs_mask) != actual)
                ++failures;
        }
    }

    hSyndromeWeight.merge(weights);
    cShotsDecoded.add(samples.shots);
    cLogicalFailures.add(failures);
    cTrivialShots.add(trivial);
    return failures;
}

MemoryResult
runMemoryExperiment(const stab::Circuit& circuit, std::size_t shots,
                    std::size_t rounds, DecoderKind decoder, Rng& rng)
{
    MemoryResult result;
    result.shots = shots;
    result.rounds = rounds;
    if (shots == 0)
        return result;

    const auto setup = DecoderCache::instance().get(circuit, decoder);
    const stab::FrameSimulator frame(setup->program);

    // One draw fixes the experiment's base stream; every chunk derives
    // its generator from (base, chunkIndex), so the partition — and
    // with it the result — is independent of how chunks are scheduled.
    const std::uint64_t base = rng();
    const exec::ShotScheduler sched(shots);
    std::vector<std::size_t> failures(sched.numChunks(), 0);
    exec::parallelFor(sched.numChunks(), [&](std::size_t i) {
        const auto chunk = sched.chunk(i);
        Rng chunk_rng = exec::ShotScheduler::chunkRng(base, chunk.index);
        const auto samples = frame.sampleDetectors(chunk.count, chunk_rng);
        failures[i] = countLogicalFailures(*setup, decoder, samples);
        cShotsCompleted.add(chunk.count);
    });
    for (auto f : failures)
        result.failures += f;
    return result;
}

double
surfaceLogicalErrorPerRound(std::size_t distance, std::size_t rounds,
                            const CircuitNoise& noise, std::size_t shots,
                            std::uint64_t seed)
{
    const auto circuit = surfaceMemoryZ(distance, rounds, noise);
    Rng rng(seed);
    const auto result = runMemoryExperiment(circuit, shots, rounds,
                                            DecoderKind::UnionFind, rng);
    return result.perRound();
}

} // namespace qec
} // namespace hetarch
