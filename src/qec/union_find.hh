/**
 * @file
 * Weighted union-find decoder (Delfosse–Nickerson) over a decoding
 * graph derived from a detector error model.
 *
 * The graph is built per detector class (tag): for the surface code,
 * Z-stabilizer detectors form the graph that catches X errors and
 * carries the logical-Z observable.  Mechanisms with one detector in
 * the class become boundary edges; with two, ordinary edges; with more
 * than two, they are decomposed onto existing elementary edges (the
 * same convention Stim/PyMatching use for Y-type correlations).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "stab/dem.hh"

namespace hetarch {
namespace qec {

/** One edge of the decoding graph. */
struct GraphEdge
{
    std::int32_t u = -1;     ///< node id
    std::int32_t v = -1;     ///< node id, or -1 for the boundary
    double probability = 0.0;
    std::uint32_t observables = 0; ///< logical mask flipped by this edge
    std::int32_t weight = 1;       ///< integer growth weight
};

/** Matching graph over one detector class. */
class DecodingGraph
{
  public:
    /**
     * Build from a DEM keeping only detectors whose tag equals
     * @p wanted_tag.  @p tags is indexed by detector id.
     *
     * @p carries_observables: whether logical flips are attributed to
     * this graph.  In a memory-Z experiment only X-type errors flip the
     * logical, and they are caught by the Z-stabilizer graph — so that
     * graph carries the observables and the X-stabilizer graph must
     * not (Y-error mechanisms span both graphs and would otherwise
     * double-attribute their logical flip).
     */
    static DecodingGraph fromDem(const stab::DetectorErrorModel& dem,
                                 const std::vector<std::uint32_t>& tags,
                                 std::uint32_t wanted_tag,
                                 bool carries_observables = true);

    /** Number of (kept) detector nodes. */
    std::size_t numNodes() const { return nNodes; }
    const std::vector<GraphEdge>& edges() const { return edgeList; }
    /** Edge ids incident to a node. */
    const std::vector<std::vector<std::int32_t>>& incidence() const
    {
        return inc;
    }
    /** Map from global detector id to node id (-1 when filtered out). */
    const std::vector<std::int32_t>& detectorToNode() const
    {
        return det2node;
    }
    /** Mechanisms that could not be decomposed onto elementary edges. */
    std::size_t undecomposedCount() const { return undecomposed; }

    /** Project a full detector event vector onto this graph's nodes. */
    std::vector<std::uint8_t>
    projectSyndrome(const std::vector<std::uint8_t>& detectors) const;

  private:
    std::size_t nNodes = 0;
    std::vector<GraphEdge> edgeList;
    std::vector<std::vector<std::int32_t>> inc;
    std::vector<std::int32_t> det2node;
    std::size_t undecomposed = 0;
};

/**
 * Union-find decoder.  Construct once per graph, then decode many
 * syndromes.
 */
class UnionFindDecoder
{
  public:
    explicit UnionFindDecoder(const DecodingGraph& graph);

    /**
     * Decode one syndrome (bit per node).  Returns the predicted
     * logical-observable mask of the correction.
     */
    std::uint32_t decode(const std::vector<std::uint8_t>& syndrome) const;

  private:
    const DecodingGraph& g;
};

} // namespace qec
} // namespace hetarch
