/**
 * @file
 * Weighted union-find decoder (Delfosse–Nickerson) over a decoding
 * graph derived from a detector error model.
 *
 * The graph is built per detector class (tag): for the surface code,
 * Z-stabilizer detectors form the graph that catches X errors and
 * carries the logical-Z observable.  Mechanisms with one detector in
 * the class become boundary edges; with two, ordinary edges; with more
 * than two, they are decomposed onto existing elementary edges (the
 * same convention Stim/PyMatching use for Y-type correlations).
 *
 * Two decode entry points share the algorithm:
 *
 *   - decode(dense) allocates fresh state per call and scans every
 *     node.  It is the reference implementation — simple, const,
 *     thread-safe.
 *   - decodeSparse(span of fired node ids) runs on an epoch-versioned
 *     scratch arena owned by the decoder: per-node/per-edge state is
 *     lazily re-initialized the first time a decode touches it, so a
 *     weight-w syndrome costs O(cluster size), not O(graph size), and
 *     no per-shot allocation survives warm-up.  Outputs are
 *     bit-identical to decode() — the growth schedule, frontier
 *     merge order and peeling order are replicated exactly, which the
 *     packed-pipeline tests pin.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stab/dem.hh"

namespace hetarch {
namespace qec {

/** One edge of the decoding graph. */
struct GraphEdge
{
    std::int32_t u = -1;     ///< node id
    std::int32_t v = -1;     ///< node id, or -1 for the boundary
    double probability = 0.0;
    std::uint32_t observables = 0; ///< logical mask flipped by this edge
    std::int32_t weight = 1;       ///< integer growth weight
};

/** Matching graph over one detector class. */
class DecodingGraph
{
  public:
    /**
     * Build from a DEM keeping only detectors whose tag equals
     * @p wanted_tag.  @p tags is indexed by detector id.
     *
     * @p carries_observables: whether logical flips are attributed to
     * this graph.  In a memory-Z experiment only X-type errors flip the
     * logical, and they are caught by the Z-stabilizer graph — so that
     * graph carries the observables and the X-stabilizer graph must
     * not (Y-error mechanisms span both graphs and would otherwise
     * double-attribute their logical flip).
     */
    static DecodingGraph fromDem(const stab::DetectorErrorModel& dem,
                                 const std::vector<std::uint32_t>& tags,
                                 std::uint32_t wanted_tag,
                                 bool carries_observables = true);

    /** Number of (kept) detector nodes. */
    std::size_t numNodes() const { return nNodes; }
    const std::vector<GraphEdge>& edges() const { return edgeList; }
    /** Edge ids incident to a node. */
    const std::vector<std::vector<std::int32_t>>& incidence() const
    {
        return inc;
    }
    /** Map from global detector id to node id (-1 when filtered out). */
    const std::vector<std::int32_t>& detectorToNode() const
    {
        return det2node;
    }
    /** Mechanisms that could not be decomposed onto elementary edges. */
    std::size_t undecomposedCount() const { return undecomposed; }

    /** Project a full detector event vector onto this graph's nodes. */
    std::vector<std::uint8_t>
    projectSyndrome(const std::vector<std::uint8_t>& detectors) const;

    /**
     * Project an ascending list of fired global detector ids onto this
     * graph, appending the kept node ids to @p out (ascending, since
     * node ids are assigned in detector order).  The sparse analogue
     * of projectSyndrome.
     */
    void projectSparse(std::span<const std::uint32_t> fired,
                       std::vector<std::uint32_t>& out) const;

  private:
    std::size_t nNodes = 0;
    std::vector<GraphEdge> edgeList;
    std::vector<std::vector<std::int32_t>> inc;
    std::vector<std::int32_t> det2node;
    std::size_t undecomposed = 0;
};

/**
 * Union-find decoder.  Construct once per graph, then decode many
 * syndromes.  decode() is const and thread-safe; decodeSparse() uses
 * the decoder's scratch arena and must not be called concurrently on
 * one instance (use one decoder per worker, as the chunked experiment
 * path does).
 */
class UnionFindDecoder
{
  public:
    explicit UnionFindDecoder(const DecodingGraph& graph);

    /**
     * Decode one syndrome (bit per node).  Returns the predicted
     * logical-observable mask of the correction.  Reference
     * implementation: allocates per call.
     */
    std::uint32_t decode(const std::vector<std::uint8_t>& syndrome) const;

    /**
     * Decode a sparse syndrome given as the ascending list of fired
     * node ids.  Bit-identical to decode() on the equivalent dense
     * vector; runs on the reusable arena (no per-shot allocation once
     * warm).
     *
     * When @p applied_edges is non-null, the ids of the correction
     * edges the peeling pass applied are appended to it (in peel
     * order).  The sliding-window decoder uses this to split a
     * window's correction into committed and deferred parts; passing
     * nullptr skips the recording entirely.
     */
    std::uint32_t decodeSparse(std::span<const std::uint32_t> fired,
                               std::vector<std::uint32_t>* applied_edges =
                                   nullptr);

    /**
     * Decode a block of sparse syndromes at once, writing the
     * predicted observable mask of shot i to @p out[i].
     *
     * Output-identical to calling decodeSparse() per shot: each decode
     * is a pure function of its fired list (the epoch-stamped arena
     * isolates decodes from each other), so reordering and reusing
     * results cannot change any prediction.  What batching buys is
     * amortization — shots are processed in ascending syndrome-weight
     * order (cheap trivial/unit syndromes first, keeping the arena's
     * touched set small and hot), lexicographically equal neighbours
     * reuse the previous shot's mask without re-decoding, and the
     * arena warm-up is paid once per block instead of once per call
     * site.  Returns the number of decodes skipped via duplicate
     * reuse (telemetry: qec.decode.batch_dedup_hits).
     */
    std::size_t decodeBatch(std::span<const std::vector<std::uint32_t>>
                                fired,
                            std::span<std::uint32_t> out);

  private:
    void touchNode(std::size_t v);
    std::vector<std::pair<std::size_t, std::size_t>>&
    adjOf(std::size_t v);
    std::size_t findRoot(std::size_t x);
    std::size_t unite(std::size_t a, std::size_t b);

    const DecodingGraph& g;

    // --- epoch-versioned scratch arena (decodeSparse only) ----------
    // A slot is valid iff its epoch stamp equals `epoch`; bumping
    // `epoch` invalidates everything in O(1).  Sized n+1 (last slot =
    // virtual boundary node) or #edges at construction.
    std::uint64_t epoch = 0;
    std::vector<std::uint64_t> nodeEpoch;
    std::vector<std::uint64_t> edgeEpoch;
    std::vector<std::uint64_t> adjNodeEpoch;
    std::vector<std::uint64_t> visitedEpoch;
    std::vector<std::int32_t> parent;
    std::vector<std::uint8_t> odd;
    std::vector<std::uint8_t> touchesBoundary;
    std::vector<std::uint8_t> materialized;
    std::vector<std::uint8_t> defect;
    std::vector<std::vector<std::int32_t>> frontier;
    std::vector<std::vector<std::int32_t>> members;
    std::vector<std::int32_t> grown;
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj;
    std::vector<std::pair<std::size_t, std::size_t>> parentEdge;
    // Reused per-decode buffers (cleared, never shrunk).
    std::vector<std::size_t> worklist;
    std::vector<std::size_t> touchedNodes;
    std::vector<std::size_t> grownEdges;
    std::vector<std::size_t> rootsBuf;
    std::vector<std::size_t> orderBuf;
    std::vector<std::int32_t> keepBuf;
    std::vector<std::int32_t> edgesNowBuf;
    std::vector<std::uint32_t> batchOrderBuf; ///< decodeBatch shot order
};

} // namespace qec
} // namespace hetarch
