#include "qec/noise_model.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace hetarch {
namespace qec {

PauliIdle
idleTwirl(double t_ns, double t1_ns, double t2_ns)
{
    HETARCH_ASSERT(t_ns >= 0.0 && t1_ns > 0.0 && t2_ns > 0.0,
                   "bad idleTwirl arguments");
    const double p_amp = 1.0 - std::exp(-t_ns / t1_ns);
    const double p_deph = 1.0 - std::exp(-t_ns / t2_ns);
    PauliIdle out;
    out.px = p_amp / 4.0;
    out.py = p_amp / 4.0;
    out.pz = std::max(0.0, p_deph / 2.0 - p_amp / 4.0);
    return out;
}

} // namespace qec
} // namespace hetarch
