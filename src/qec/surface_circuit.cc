#include "qec/surface_circuit.hh"

#include <vector>

#include "core/logging.hh"
#include "lint/lint.hh"

namespace hetarch {
namespace qec {

namespace {

/** One stabilizer plaquette of the rotated layout. */
struct Plaquette
{
    long i, j;     ///< plaquette-grid position
    bool isX;      ///< X-type (else Z-type)
    std::uint32_t ancilla; ///< ancilla qubit index
    std::vector<std::uint32_t> data; ///< data-qubit support
};

void
applyIdle(stab::Circuit& c, std::uint32_t q, const PauliIdle& p)
{
    c.pauliChannel1(q, p.px, p.py, p.pz);
}

} // namespace

stab::Circuit
surfaceMemory(std::size_t distance, std::size_t rounds,
              const CircuitNoise& noise, MemoryBasis basis)
{
    HETARCH_ASSERT(distance >= 2 && rounds >= 1,
                   "surfaceMemory needs d >= 2 and rounds >= 1");
    const bool memory_x = basis == MemoryBasis::X;
    const auto d = static_cast<long>(distance);

    auto data_idx = [&](long r, long c) {
        return static_cast<std::uint32_t>(r * d + c);
    };
    auto valid = [&](long r, long c) {
        return r >= 0 && r < d && c >= 0 && c < d;
    };

    // Enumerate plaquettes with the same boundary rules as
    // makeRotatedSurface.
    std::vector<Plaquette> plaqs;
    std::uint32_t next_anc = static_cast<std::uint32_t>(d * d);
    for (long i = 0; i <= d; ++i) {
        for (long j = 0; j <= d; ++j) {
            std::vector<std::uint32_t> sup;
            for (const auto& [dr, dc] :
                 std::vector<std::pair<long, long>>{
                     {-1, -1}, {-1, 0}, {0, -1}, {0, 0}}) {
                if (valid(i + dr, j + dc))
                    sup.push_back(data_idx(i + dr, j + dc));
            }
            const bool is_x = (i + j) % 2 == 0;
            bool keep = false;
            if (sup.size() == 4) {
                keep = true;
            } else if (sup.size() == 2) {
                const bool top_bottom = (i == 0 || i == d);
                keep = (is_x && top_bottom) || (!is_x && !top_bottom);
            }
            if (keep)
                plaqs.push_back({i, j, is_x, next_anc++, sup});
        }
    }

    const std::size_t n_data = distance * distance;
    stab::Circuit circ(n_data + plaqs.size());

    // Interaction schedules: relative (dr, dc) of the data partner per
    // CNOT layer.  X-ancillas walk a "Z" (NW, NE, SW, SE) so their
    // late hook pairs are horizontal; Z-ancillas walk an "N"
    // (NW, SW, NE, SE) so theirs are vertical.  Logical Z lives on a
    // horizontal row (broken by vertical X chains) and logical X on a
    // vertical column (broken by horizontal Z chains), so these
    // orientations keep hook errors from accelerating logical chains.
    static const long x_order[4][2] = {{-1, -1}, {-1, 0}, {0, -1}, {0, 0}};
    static const long z_order[4][2] = {{-1, -1}, {0, -1}, {-1, 0}, {0, 0}};

    // Previous-round measurement record index per plaquette.
    std::vector<std::size_t> prev_meas(plaqs.size(), SIZE_MAX);

    // Reset all ancillas up front.  Data qubits start in |0>; for a
    // memory-X experiment they are rotated into |+> (noiseless
    // transversal preparation, as in the standard memory experiment).
    for (const auto& p : plaqs)
        circ.reset(p.ancilla);
    if (memory_x)
        for (std::uint32_t q = 0; q < n_data; ++q)
            circ.h(q);

    for (std::size_t round = 0; round < rounds; ++round) {
        // --- layer A: H on X ancillas -------------------------------
        for (const auto& p : plaqs) {
            if (p.isX) {
                circ.h(p.ancilla);
                circ.depolarize1(p.ancilla, noise.p1);
            } else {
                applyIdle(circ, p.ancilla, noise.ancIdle(noise.t1q));
            }
        }
        for (std::uint32_t q = 0; q < n_data; ++q)
            applyIdle(circ, q, noise.dataIdle(noise.t1q));

        // --- layers 1..4: CNOT dance --------------------------------
        for (int layer = 0; layer < 4; ++layer) {
            std::vector<bool> busy(circ.numQubits(), false);
            for (const auto& p : plaqs) {
                const long* off = p.isX ? x_order[layer] : z_order[layer];
                const long r = p.i + off[0], c = p.j + off[1];
                if (!valid(r, c))
                    continue;
                const std::uint32_t dq = data_idx(r, c);
                if (p.isX)
                    circ.cx(p.ancilla, dq);
                else
                    circ.cx(dq, p.ancilla);
                circ.depolarize2(p.ancilla, dq, noise.p2);
                busy[p.ancilla] = true;
                busy[dq] = true;
            }
            for (std::uint32_t q = 0; q < n_data; ++q)
                if (!busy[q])
                    applyIdle(circ, q, noise.dataIdle(noise.t2q));
            for (const auto& p : plaqs)
                if (!busy[p.ancilla])
                    applyIdle(circ, p.ancilla, noise.ancIdle(noise.t2q));
        }

        // --- layer B: H on X ancillas -------------------------------
        for (const auto& p : plaqs) {
            if (p.isX) {
                circ.h(p.ancilla);
                circ.depolarize1(p.ancilla, noise.p1);
            } else {
                applyIdle(circ, p.ancilla, noise.ancIdle(noise.t1q));
            }
        }
        for (std::uint32_t q = 0; q < n_data; ++q)
            applyIdle(circ, q, noise.dataIdle(noise.t1q));

        // --- measurement layer --------------------------------------
        // Data qubits idle for the full readout; this is the dominant
        // heterogeneity-sensitive error (paper Section 4.2.1).
        for (std::uint32_t q = 0; q < n_data; ++q)
            applyIdle(circ, q, noise.dataIdle(noise.tMeas));
        for (std::size_t pi = 0; pi < plaqs.size(); ++pi) {
            const auto& p = plaqs[pi];
            circ.xError(p.ancilla, noise.pMeasFlip);
            const auto m = circ.measureReset(p.ancilla);
            // First-round stabilizer outcomes are deterministic only
            // for the checks whose eigenstate the data was prepared
            // in: Z checks for memory-Z, X checks for memory-X.
            const bool first_round_deterministic =
                p.isX == memory_x;
            const auto tag = p.isX ? kTagX : kTagZ;
            if (round == 0) {
                if (first_round_deterministic)
                    circ.detector({m}, tag);
            } else {
                circ.detector({prev_meas[pi], m}, tag);
            }
            prev_meas[pi] = m;
        }
    }

    // --- final transversal data readout ------------------------------
    // Memory-X reads out in the X basis (H before measuring).
    if (memory_x)
        for (std::uint32_t q = 0; q < n_data; ++q)
            circ.h(q);
    std::vector<std::size_t> data_meas(n_data);
    for (std::uint32_t q = 0; q < n_data; ++q)
        data_meas[q] = circ.measure(q);

    for (std::size_t pi = 0; pi < plaqs.size(); ++pi) {
        const auto& p = plaqs[pi];
        if (p.isX != memory_x)
            continue;
        std::vector<std::size_t> refs;
        for (auto dq : p.data)
            refs.push_back(data_meas[dq]);
        refs.push_back(prev_meas[pi]);
        circ.detector(refs, p.isX ? kTagX : kTagZ);
    }

    // Logical Z runs along row 0; logical X along column 0.
    std::vector<std::size_t> logical;
    for (long k = 0; k < d; ++k)
        logical.push_back(data_meas[memory_x ? data_idx(k, 0)
                                             : data_idx(0, k)]);
    circ.observableInclude(0, logical);

#ifndef NDEBUG
    // Debug builds prove the generated circuit lint-clean (including
    // static detector determinism) before anyone simulates it.
    lint::assertClean(circ, "surfaceMemory");
#endif
    return circ;
}

stab::Circuit
surfaceMemoryZ(std::size_t distance, std::size_t rounds,
               const CircuitNoise& noise)
{
    return surfaceMemory(distance, rounds, noise, MemoryBasis::Z);
}

} // namespace qec
} // namespace hetarch
