#include "qec/css_circuit.hh"

#include "core/logging.hh"
#include "lint/lint.hh"
#include "qec/surface_circuit.hh" // kTagZ / kTagX

namespace hetarch {
namespace qec {

stab::Circuit
codeCapacityMemoryZ(const CssCode& code, std::size_t rounds, double p_x,
                    double p_z)
{
    HETARCH_ASSERT(rounds >= 1, "need at least one round");
    const auto n = static_cast<std::uint32_t>(code.n);
    const auto n_z = code.zChecks.size();
    const auto n_x = code.xChecks.size();
    // Ancillas: one per Z check then one per X check.
    stab::Circuit circ(code.n + n_z + n_x);

    std::vector<std::size_t> prev_z(n_z, SIZE_MAX);
    std::vector<std::size_t> prev_x(n_x, SIZE_MAX);

    for (std::size_t round = 0; round < rounds; ++round) {
        for (std::uint32_t q = 0; q < n; ++q) {
            circ.xError(q, p_x);
            circ.zError(q, p_z);
        }
        // Z checks: ancilla in |0>, CNOT data -> ancilla, measure.
        for (std::size_t c = 0; c < n_z; ++c) {
            const auto anc = n + static_cast<std::uint32_t>(c);
            for (auto q : code.zChecks[c])
                circ.cx(q, anc);
            const auto m = circ.measureReset(anc);
            if (prev_z[c] == SIZE_MAX)
                circ.detector({m}, kTagZ);
            else
                circ.detector({prev_z[c], m}, kTagZ);
            prev_z[c] = m;
        }
        // X checks: ancilla in |+>, CNOT ancilla -> data, measure X.
        for (std::size_t c = 0; c < n_x; ++c) {
            const auto anc =
                n + static_cast<std::uint32_t>(n_z + c);
            circ.h(anc);
            for (auto q : code.xChecks[c])
                circ.cx(anc, q);
            circ.h(anc);
            const auto m = circ.measureReset(anc);
            if (prev_x[c] != SIZE_MAX)
                circ.detector({prev_x[c], m}, kTagX);
            prev_x[c] = m;
        }
    }

    std::vector<std::size_t> data_meas(code.n);
    for (std::uint32_t q = 0; q < n; ++q)
        data_meas[q] = circ.measure(q);
    for (std::size_t c = 0; c < n_z; ++c) {
        std::vector<std::size_t> refs;
        for (auto q : code.zChecks[c])
            refs.push_back(data_meas[q]);
        refs.push_back(prev_z[c]);
        circ.detector(refs, kTagZ);
    }
    std::vector<std::size_t> logical;
    for (auto q : code.logicalZ)
        logical.push_back(data_meas[q]);
    circ.observableInclude(0, logical);
#ifndef NDEBUG
    lint::assertClean(circ, "codeCapacityMemoryZ");
#endif
    return circ;
}

} // namespace qec
} // namespace hetarch
