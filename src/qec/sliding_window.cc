#include "qec/sliding_window.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <span>

#include "core/logging.hh"

namespace hetarch {
namespace qec {

namespace {

// Advisory decode-latency distribution, one record per window decode
// point (timing-gated like every duration histogram).
obs::Histogram& hWindowDecodeNs =
    obs::histogram("qec.stream.window_decode_ns");

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

SlidingWindowDecoder::SlidingWindowDecoder(const DecoderSetup& setup,
                                           DecoderKind kind,
                                           const WindowConfig& config)
    : setup(setup), kind(kind), decZ(setup.graphZ), decX(setup.graphX)
{
    const auto& prog = *setup.program;
    nRounds = std::max<std::size_t>(prog.numSlices(), 1);
    isWindowed =
        config.windowRounds > 0 && config.windowRounds < nRounds;
    if (!isWindowed) {
        window = commit = nRounds;
        detColumn.assign(prog.numDetectors(), 0);
        obsAccum.assign(prog.numObservables(), 0);
        return;
    }
    HETARCH_ASSERT(kind == DecoderKind::UnionFind,
                   "sliding-window decoding needs correction-edge "
                   "output, which only the union-find decoder provides");
    window = config.windowRounds;
    commit = config.commitRounds
                 ? std::min(config.commitRounds, window)
                 : std::max<std::size_t>(window / 2, 1);
    obsAccum.assign(prog.numObservables(), 0);

    // Node -> round maps, from the program's slice detector ranges.
    const DecodingGraph* graphs[2] = {&setup.graphZ, &setup.graphX};
    for (std::size_t g = 0; g < 2; ++g)
        nodeRound[g].assign(graphs[g]->numNodes(), 0);
    for (std::size_t s = 0; s < prog.numSlices(); ++s) {
        const auto& info = prog.sliceInfo(s);
        for (std::size_t d = info.detBegin; d < info.detEnd; ++d)
            for (std::size_t g = 0; g < 2; ++g) {
                const auto n = graphs[g]->detectorToNode()[d];
                if (n >= 0)
                    nodeRound[g][static_cast<std::size_t>(n)] =
                        static_cast<std::uint32_t>(s);
            }
    }
}

void
SlidingWindowDecoder::beginBatch(std::size_t n_lanes)
{
    HETARCH_ASSERT(n_lanes >= 1 && n_lanes <= 64,
                   "batch lanes out of range");
    lanes = n_lanes;
    pushedRounds = 0;
    windowBase = 0;
    predicted.fill(0);
    shotWeight.fill(0);
    std::fill(obsAccum.begin(), obsAccum.end(), 0);
    if (!isWindowed) {
        std::fill(detColumn.begin(), detColumn.end(), 0);
    } else {
        for (auto& per_graph : pending)
            for (auto& pend : per_graph)
                pend.clear();
    }
}

void
SlidingWindowDecoder::pushBlock(const stab::SyndromeBlock& block)
{
    HETARCH_ASSERT(block.slice == pushedRounds,
                   "blocks must arrive in round order");
    ++acc.blocks;
    for (std::size_t k = 0; k < obsAccum.size(); ++k)
        obsAccum[k] ^= block.obsWords[k];
    pushedRounds = block.slice + 1;

    if (!isWindowed) {
        std::copy(block.detWords.begin(), block.detWords.end(),
                  detColumn.begin() + block.detBegin);
        return;
    }

    // Extract the round's fired detectors per lane and project them
    // onto both graphs; the pending lists are the only syndrome
    // storage, so a consumed block can be recycled immediately.
    for (std::size_t l = 0; l < lanes; ++l)
        blockFired[l].clear();
    for (std::size_t i = 0; i < block.detWords.size(); ++i) {
        std::uint64_t word = block.detWords[i];
        while (word) {
            const auto l =
                static_cast<std::size_t>(std::countr_zero(word));
            word &= word - 1;
            blockFired[l].push_back(block.detBegin +
                                    static_cast<std::uint32_t>(i));
        }
    }
    for (std::size_t l = 0; l < lanes; ++l) {
        if (blockFired[l].empty())
            continue;
        shotWeight[l] += static_cast<std::uint32_t>(blockFired[l].size());
        if (setup.graphZ.numNodes())
            setup.graphZ.projectSparse(blockFired[l], pending[0][l]);
        if (setup.graphX.numNodes())
            setup.graphX.projectSparse(blockFired[l], pending[1][l]);
    }

    if (pushedRounds == nRounds) {
        decodeWindow(nRounds, nRounds); // final window commits all
    } else if (pushedRounds - windowBase == window) {
        decodeWindow(pushedRounds, windowBase + commit);
        windowBase += commit;
    }
}

void
SlidingWindowDecoder::pushBufferColumn(const stab::DetectorSamples& samples,
                                       std::size_t w)
{
    HETARCH_ASSERT(!isWindowed,
                   "pushBufferColumn is the whole-buffer ingestion path");
    for (std::size_t d = 0; d < samples.numDetectors; ++d)
        detColumn[d] = samples.detWord(d, w);
    for (std::size_t k = 0; k < samples.numObservables; ++k)
        obsAccum[k] = samples.obsWord(k, w);
    pushedRounds = nRounds;
}

void
SlidingWindowDecoder::decodeWindowLane(std::size_t graph, std::size_t lane,
                                       std::size_t commit_end,
                                       bool final_window)
{
    auto& pend = pending[graph][lane];
    if (pend.empty())
        return;
    ++acc.laneDecodes;
    auto& dec = graph == 0 ? decZ : decX;

    if (final_window) {
        // Everything commits: apply the full correction mask, no edge
        // recording needed.
        predicted[lane] ^= dec.decodeSparse(pend);
        pend.clear();
        return;
    }

    edgesBuf.clear();
    (void)dec.decodeSparse(pend, &edgesBuf);

    const auto& edges =
        (graph == 0 ? setup.graphZ : setup.graphX).edges();
    const auto& rounds = nodeRound[graph];
    flipsBuf.clear();
    for (const auto eid : edgesBuf) {
        const auto& e = edges[eid];
        const std::uint32_t ru = rounds[static_cast<std::size_t>(e.u)];
        const std::uint32_t rv =
            e.v < 0 ? ru : rounds[static_cast<std::size_t>(e.v)];
        if (std::min(ru, rv) >= commit_end)
            continue; // entirely retained: re-decoded next window
        predicted[lane] ^= e.observables;
        if (std::max(ru, rv) >= commit_end)
            // Crossing edge: its committed half deposited parity on
            // the retained endpoint.
            flipsBuf.push_back(static_cast<std::uint32_t>(
                ru >= commit_end ? e.u : e.v));
    }

    // Carry = retained pending defects XOR the crossing-edge flips
    // (parity-reduced: two flips on one node cancel).
    std::sort(flipsBuf.begin(), flipsBuf.end());
    nodesBuf.clear();
    for (std::size_t i = 0; i < flipsBuf.size();) {
        std::size_t j = i;
        while (j < flipsBuf.size() && flipsBuf[j] == flipsBuf[i])
            ++j;
        if ((j - i) % 2)
            nodesBuf.push_back(flipsBuf[i]);
        i = j;
    }
    keepBuf.clear();
    for (const auto v : pend)
        if (rounds[v] >= commit_end)
            keepBuf.push_back(v);
    pend.clear();
    std::set_symmetric_difference(keepBuf.begin(), keepBuf.end(),
                                  nodesBuf.begin(), nodesBuf.end(),
                                  std::back_inserter(pend));
    acc.carryDefects += pend.size();
}

void
SlidingWindowDecoder::decodeWindow(std::size_t window_end,
                                   std::size_t commit_end)
{
    const bool timed = obs::timingEnabled();
    const std::uint64_t t0 = timed ? nowNs() : 0;

    const bool final_window = commit_end >= nRounds;
    ++acc.windows;
    acc.committedRounds += commit_end - windowBase;
    for (std::size_t l = 0; l < lanes; ++l)
        for (std::size_t g = 0; g < 2; ++g)
            decodeWindowLane(g, l, commit_end, final_window);
    (void)window_end;

    if (timed) {
        const std::uint64_t dt = nowNs() - t0;
        acc.decodeNs += dt;
        hWindowDecodeNs.record(dt);
    }
}

std::size_t
SlidingWindowDecoder::finishBatch()
{
    HETARCH_ASSERT(pushedRounds == nRounds,
                   "finishBatch before every round was pushed");
    const bool timed = obs::timingEnabled();
    const std::uint64_t t0 = timed ? nowNs() : 0;

    if (!isWindowed) {
        // The historical whole-buffer loop: one detector-major pass
        // enumerates each lane's fired detectors, then every lane is
        // decoded through the sparse entry points in lane order.
        for (std::size_t l = 0; l < lanes; ++l)
            blockFired[l].clear();
        for (std::size_t d = 0; d < detColumn.size(); ++d) {
            std::uint64_t word = detColumn[d];
            while (word) {
                const auto l =
                    static_cast<std::size_t>(std::countr_zero(word));
                word &= word - 1;
                blockFired[l].push_back(static_cast<std::uint32_t>(d));
            }
        }
        for (std::size_t l = 0; l < lanes; ++l) {
            const auto& f = blockFired[l]; // ascending detector ids
            acc.syndromeWeights.record(f.size());
            std::uint32_t pred = 0;
            if (f.empty()) {
                // Weight-0 fast path: both decoders map the empty
                // syndrome to the zero correction.
                ++acc.trivialShots;
            } else if (kind == DecoderKind::GreedyDem) {
                pred = setup.greedy->decodeSparse(f, residual,
                                                  residualNext);
            } else {
                if (setup.graphZ.numNodes()) {
                    nodesBuf.clear();
                    setup.graphZ.projectSparse(f, nodesBuf);
                    pred ^= decZ.decodeSparse(nodesBuf);
                }
                if (setup.graphX.numNodes()) {
                    nodesBuf.clear();
                    setup.graphX.projectSparse(f, nodesBuf);
                    pred ^= decX.decodeSparse(nodesBuf);
                }
            }
            predicted[l] = pred;
        }
    } else {
        for (std::size_t l = 0; l < lanes; ++l) {
            acc.syndromeWeights.record(shotWeight[l]);
            if (shotWeight[l] == 0)
                ++acc.trivialShots;
        }
    }

    const std::size_t n_obs = obsAccum.size();
    const std::uint32_t obs_mask =
        n_obs >= 32 ? 0xffffffffu
                    : (1u << static_cast<std::uint32_t>(n_obs)) - 1u;
    std::size_t failures = 0;
    for (std::size_t l = 0; l < lanes; ++l) {
        std::uint32_t actual = 0;
        for (std::size_t k = 0; k < n_obs && k < 32; ++k)
            actual |= static_cast<std::uint32_t>((obsAccum[k] >> l) & 1)
                      << k;
        if ((predicted[l] & obs_mask) != actual)
            ++failures;
    }
    acc.failures += failures;
    acc.shots += lanes;
    if (timed)
        acc.decodeNs += nowNs() - t0;
    return failures;
}

std::size_t
SlidingWindowDecoder::decodeBuffer(const stab::DetectorSamples& samples)
{
    HETARCH_ASSERT(!isWindowed,
                   "decodeBuffer is the whole-buffer batch entry");
    const bool timed = obs::timingEnabled();
    const std::uint64_t t0 = timed ? nowNs() : 0;

    const std::size_t block_cap = kDecodeBlockWords * 64;
    bufFired.resize(block_cap);
    projZ.resize(block_cap);
    projX.resize(block_cap);
    maskA.resize(block_cap);
    maskB.resize(block_cap);

    const std::size_t n_obs = samples.numObservables;
    const std::uint32_t obs_mask =
        n_obs >= 32 ? 0xffffffffu
                    : (1u << static_cast<std::uint32_t>(n_obs)) - 1u;

    std::size_t failures = 0;
    for (std::size_t w0 = 0; w0 < samples.numWords;
         w0 += kDecodeBlockWords) {
        const std::size_t words =
            std::min(kDecodeBlockWords, samples.numWords - w0);
        const std::size_t block_shots =
            std::min(words * 64, samples.shots - w0 * 64);

        // One detector-major pass over the block's packed words pulls
        // every shot's fired list (ascending detector ids) at once.
        for (std::size_t s = 0; s < block_shots; ++s)
            bufFired[s].clear();
        for (std::size_t d = 0; d < samples.numDetectors; ++d) {
            const std::uint64_t* row =
                samples.detWords.data() + d * samples.numWords + w0;
            for (std::size_t j = 0; j < words; ++j) {
                std::uint64_t word = row[j];
                while (word) {
                    const auto l = static_cast<std::size_t>(
                        std::countr_zero(word));
                    word &= word - 1;
                    bufFired[j * 64 + l].push_back(
                        static_cast<std::uint32_t>(d));
                }
            }
        }

        ++acc.batchBlocks;
        acc.batchShots += block_shots;
        for (std::size_t s = 0; s < block_shots; ++s) {
            acc.syndromeWeights.record(bufFired[s].size());
            if (bufFired[s].empty())
                ++acc.trivialShots;
        }

        const std::span<const std::vector<std::uint32_t>> lists(
            bufFired.data(), block_shots);
        if (kind == DecoderKind::GreedyDem) {
            acc.dedupHits += setup.greedy->decodeBatch(
                lists, std::span<std::uint32_t>(maskA.data(), block_shots),
                residual, residualNext, batchOrder);
            for (std::size_t s = 0; s < block_shots; ++s)
                maskB[s] = 0;
        } else {
            // Project every shot onto both graphs, then decode each
            // graph's syndromes as one weight-sorted batch.
            for (std::size_t s = 0; s < block_shots; ++s) {
                projZ[s].clear();
                projX[s].clear();
                if (bufFired[s].empty())
                    continue;
                if (setup.graphZ.numNodes())
                    setup.graphZ.projectSparse(bufFired[s], projZ[s]);
                if (setup.graphX.numNodes())
                    setup.graphX.projectSparse(bufFired[s], projX[s]);
            }
            acc.dedupHits += decZ.decodeBatch(
                std::span<const std::vector<std::uint32_t>>(projZ.data(),
                                                            block_shots),
                std::span<std::uint32_t>(maskA.data(), block_shots));
            acc.dedupHits += decX.decodeBatch(
                std::span<const std::vector<std::uint32_t>>(projX.data(),
                                                            block_shots),
                std::span<std::uint32_t>(maskB.data(), block_shots));
        }

        // Compare predictions against the packed observable words.
        for (std::size_t j = 0; j < words; ++j) {
            const std::size_t lanes_w =
                std::min<std::size_t>(64, samples.shots - (w0 + j) * 64);
            for (std::size_t l = 0; l < lanes_w; ++l) {
                const std::uint32_t pred =
                    maskA[j * 64 + l] ^ maskB[j * 64 + l];
                std::uint32_t actual = 0;
                for (std::size_t k = 0; k < n_obs && k < 32; ++k)
                    actual |= static_cast<std::uint32_t>(
                                  (samples.obsWord(k, w0 + j) >> l) & 1)
                              << k;
                if ((pred & obs_mask) != actual)
                    ++failures;
            }
        }
        acc.shots += block_shots;
    }
    acc.failures += failures;
    if (timed)
        acc.decodeNs += nowNs() - t0;
    return failures;
}

} // namespace qec
} // namespace hetarch
