#include "qec/gf2.hh"

#include <algorithm>
#include <bit>

#include "core/logging.hh"

namespace hetarch {
namespace qec {

Gf2Matrix::Gf2Matrix(std::size_t rows, std::size_t cols)
    : nCols(cols), nWords((cols + 63) / 64),
      body(rows, std::vector<std::uint64_t>(nWords, 0))
{
}

Gf2Matrix
Gf2Matrix::fromSupports(
    const std::vector<std::vector<std::uint32_t>>& supports,
    std::size_t cols)
{
    Gf2Matrix m(supports.size(), cols);
    for (std::size_t r = 0; r < supports.size(); ++r)
        for (auto c : supports[r])
            m.set(r, c, true);
    return m;
}

bool
Gf2Matrix::get(std::size_t r, std::size_t c) const
{
    return (body[r][c >> 6] >> (c & 63)) & 1;
}

void
Gf2Matrix::set(std::size_t r, std::size_t c, bool v)
{
    HETARCH_ASSERT(c < nCols, "column out of range");
    const std::uint64_t mask = std::uint64_t(1) << (c & 63);
    if (v)
        body[r][c >> 6] |= mask;
    else
        body[r][c >> 6] &= ~mask;
}

void
Gf2Matrix::xorRow(std::size_t dst, std::size_t src)
{
    for (std::size_t w = 0; w < nWords; ++w)
        body[dst][w] ^= body[src][w];
}

void
Gf2Matrix::appendRow(const std::vector<std::uint32_t>& support)
{
    body.emplace_back(nWords, 0);
    for (auto c : support)
        set(body.size() - 1, c, true);
}

namespace {

/**
 * In-place row echelon reduction.  Returns the pivot column of each
 * pivot row (in order).
 */
std::vector<std::size_t>
echelonize(std::vector<std::vector<std::uint64_t>>& m, std::size_t n_cols)
{
    std::vector<std::size_t> pivots;
    std::size_t row = 0;
    for (std::size_t col = 0; col < n_cols && row < m.size(); ++col) {
        const std::size_t w = col >> 6;
        const std::uint64_t mask = std::uint64_t(1) << (col & 63);
        std::size_t pivot = row;
        while (pivot < m.size() && !(m[pivot][w] & mask))
            ++pivot;
        if (pivot == m.size())
            continue;
        std::swap(m[row], m[pivot]);
        for (std::size_t r = 0; r < m.size(); ++r) {
            if (r != row && (m[r][w] & mask)) {
                for (std::size_t k = 0; k < m[r].size(); ++k)
                    m[r][k] ^= m[row][k];
            }
        }
        pivots.push_back(col);
        ++row;
    }
    return pivots;
}

} // namespace

std::size_t
Gf2Matrix::rank() const
{
    auto copy = body;
    return echelonize(copy, nCols).size();
}

std::vector<std::vector<std::uint32_t>>
Gf2Matrix::nullspaceBasis() const
{
    auto copy = body;
    const auto pivots = echelonize(copy, nCols);

    std::vector<bool> is_pivot(nCols, false);
    for (auto p : pivots)
        is_pivot[p] = true;

    std::vector<std::vector<std::uint32_t>> basis;
    for (std::size_t free_col = 0; free_col < nCols; ++free_col) {
        if (is_pivot[free_col])
            continue;
        // Vector with 1 at free_col; pivot columns solve the system.
        std::vector<std::uint32_t> vec{
            static_cast<std::uint32_t>(free_col)};
        for (std::size_t r = 0; r < pivots.size(); ++r) {
            const std::size_t c = free_col;
            if ((copy[r][c >> 6] >> (c & 63)) & 1)
                vec.push_back(static_cast<std::uint32_t>(pivots[r]));
        }
        std::sort(vec.begin(), vec.end());
        basis.push_back(std::move(vec));
    }
    return basis;
}

bool
Gf2Matrix::inRowSpace(const std::vector<std::uint32_t>& vec) const
{
    auto copy = body;
    echelonize(copy, nCols);

    std::vector<std::uint64_t> v(nWords, 0);
    for (auto c : vec) {
        HETARCH_ASSERT(c < nCols, "column out of range");
        v[c >> 6] ^= std::uint64_t(1) << (c & 63);
    }
    // Reduce v against the echelon rows.
    for (const auto& row : copy) {
        // Find the leading column of this row.
        std::size_t lead = nCols;
        for (std::size_t w = 0; w < nWords && lead == nCols; ++w) {
            if (row[w])
                lead = (w << 6) +
                       static_cast<std::size_t>(std::countr_zero(row[w]));
        }
        if (lead == nCols)
            continue;
        if ((v[lead >> 6] >> (lead & 63)) & 1)
            for (std::size_t w = 0; w < nWords; ++w)
                v[w] ^= row[w];
    }
    for (auto w : v)
        if (w)
            return false;
    return true;
}

} // namespace qec
} // namespace hetarch
