/**
 * @file
 * Simple code-capacity syndrome-extraction circuits for arbitrary CSS
 * codes.  Used for decoder validation and as the noiseless-extraction
 * baseline; the UEC module builds its own *device-level* serialized
 * circuits (src/uec/).
 */

#pragma once

#include "qec/css_code.hh"
#include "stab/circuit.hh"

namespace hetarch {
namespace qec {

/**
 * Memory-Z code-capacity experiment: data qubits start in |0..0>, each
 * round applies independent X errors with probability @p p_x (and
 * optional Z errors @p p_z, which are invisible to the Z memory but
 * exercise X checks), followed by perfect syndrome extraction of the
 * Z checks.  X checks are extracted too (needed for CSS codes whose X
 * syndrome informs Y-error decoding) starting from round 2.
 * Ends with a transversal Z readout and the logical-Z observable.
 *
 * Detectors are tagged kTagZ / kTagX.
 */
stab::Circuit codeCapacityMemoryZ(const CssCode& code, std::size_t rounds,
                                  double p_x, double p_z = 0.0);

} // namespace qec
} // namespace hetarch
