/**
 * @file
 * Rotated-surface-code memory-experiment circuit generator.
 *
 * Produces the standard d-round memory-Z experiment with the four-step
 * syndrome-extraction dance, heterogeneous data/ancilla coherence, and
 * detector annotations, mirroring what the paper drives Stim with in
 * Section 4.2.1 (Figs. 6 and 7).
 *
 * Detector tags: kTagZ marks detectors of Z-type stabilizers (they
 * catch X errors — the graph that carries the logical-Z observable),
 * kTagX marks X-type stabilizer detectors.
 */

#pragma once

#include "qec/noise_model.hh"
#include "stab/circuit.hh"

namespace hetarch {
namespace qec {

inline constexpr std::uint32_t kTagZ = 0;
inline constexpr std::uint32_t kTagX = 1;

/** Which logical basis a memory experiment protects. */
enum class MemoryBasis
{
    Z, ///< prepare/measure logical Z (|0_L>)
    X, ///< prepare/measure logical X (|+_L>)
};

/**
 * Build a memory experiment on the rotated surface code.
 *
 * @param distance code distance d (data qubits d*d)
 * @param rounds number of noisy syndrome-extraction rounds
 * @param noise circuit noise parameters
 * @param basis logical basis under test
 */
stab::Circuit surfaceMemory(std::size_t distance, std::size_t rounds,
                            const CircuitNoise& noise, MemoryBasis basis);

/** Memory-Z convenience wrapper (the paper's Figs. 6-7 experiment). */
stab::Circuit surfaceMemoryZ(std::size_t distance, std::size_t rounds,
                             const CircuitNoise& noise);

} // namespace qec
} // namespace hetarch
