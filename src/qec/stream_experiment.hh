/**
 * @file
 * Streaming syndrome engine: sampler -> bounded block queue ->
 * sliding-window decoder, as a producer/consumer pair on the exec
 * pool.
 *
 * runStreamingMemoryExperiment() re-expresses the batch memory
 * experiment as a stream: the frame sampler emits packed per-round
 * SyndromeBlocks (stab::DetectorStream) into a bounded queue and a
 * single decoder task consumes them through one SlidingWindowDecoder.
 * With the default (whole-buffer) window the result is bit-identical
 * to runMemoryExperiment() for the same rng state and chunk size; with
 * windowRounds < rounds the decoder commits as it goes and peak
 * syndrome storage drops to the window, independent of the total round
 * count.
 *
 * Determinism contract: one base stream draw, the ShotScheduler
 * partition, and per-chunk derived generators fix the sampled bits;
 * blocks travel in FIFO order through a single consumer, so failure
 * counts and every data-dependent qec.stream.* counter are
 * bit-identical at any worker count.  When the pool cannot actually
 * run two tasks at once (one worker, or already inside a parallel
 * region) the producer decodes each block inline in the same order —
 * same stream, same result, no queue.
 *
 * Backpressure: the queue holds at most queueBlocks blocks, so a slow
 * decoder stalls the sampler instead of letting syndromes accumulate.
 * Stall time is advisory telemetry (qec.stream.backpressure_wait_ns),
 * never a counter — it varies with scheduling.
 */

#pragma once

#include <cstdint>

#include "core/rng.hh"
#include "qec/memory_experiment.hh"
#include "qec/sliding_window.hh"

namespace hetarch {
namespace qec {

/** Configuration of the streaming engine. */
struct StreamConfig
{
    /**
     * Decode window in rounds; 0 (or >= the circuit's rounds) selects
     * whole-buffer decoding, bit-identical to runMemoryExperiment.
     */
    std::size_t windowRounds = 0;
    /** Rounds committed per window step; 0 picks windowRounds/2. */
    std::size_t commitRounds = 0;
    /** Bounded queue capacity in blocks (producer/consumer mode). */
    std::size_t queueBlocks = 8;
    /** Shots per scheduler chunk (0 = ShotScheduler default). */
    std::size_t chunkShots = 0;
};

/** Result of a streaming memory experiment. */
struct StreamingResult
{
    MemoryResult memory;

    /** Effective window/commit after mode resolution. */
    std::size_t windowRounds = 0;
    std::size_t commitRounds = 0;
    /** Peak simultaneously stored syndrome rounds (the memory bound). */
    std::size_t peakStoredRounds = 0;
    /** Whether sampler and decoder actually ran as a concurrent pair. */
    bool paired = false;

    // Deterministic decode statistics (see SlidingWindowDecoder::Stats).
    std::uint64_t blocks = 0;
    std::uint64_t windows = 0;
    std::uint64_t laneDecodes = 0;
    std::uint64_t committedRounds = 0;
    std::uint64_t carryDefects = 0;
    std::uint64_t trivialShots = 0;

    // Advisory (populated only when obs timing is enabled).
    std::uint64_t decodeNs = 0;
    std::uint64_t backpressureWaitNs = 0;

    /**
     * Exact comparison over the deterministic fields.  `paired` and
     * the advisory ns fields are scheduling-dependent and excluded —
     * two runs that decoded the same stream compare equal regardless
     * of whether the producer/consumer pair actually ran concurrently.
     */
    bool operator==(const StreamingResult& o) const
    {
        return memory == o.memory && windowRounds == o.windowRounds &&
               commitRounds == o.commitRounds &&
               peakStoredRounds == o.peakStoredRounds &&
               blocks == o.blocks && windows == o.windows &&
               laneDecodes == o.laneDecodes &&
               committedRounds == o.committedRounds &&
               carryDefects == o.carryDefects &&
               trivialShots == o.trivialShots;
    }
};

/**
 * Stream @p shots shots of @p circuit through the sliding-window
 * decoder.  Draws exactly one word from @p rng, like
 * runMemoryExperiment — with a whole-buffer window and equal chunk
 * size the two are bit-identical.  Windowed mode requires
 * DecoderKind::UnionFind.
 */
StreamingResult
runStreamingMemoryExperiment(const stab::Circuit& circuit,
                             std::size_t shots, std::size_t rounds,
                             DecoderKind decoder, Rng& rng,
                             const StreamConfig& config = {});

} // namespace qec
} // namespace hetarch
