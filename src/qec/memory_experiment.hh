/**
 * @file
 * End-to-end memory-experiment harness: circuit -> detector error
 * model -> Monte-Carlo sampling -> decoding -> logical error rate.
 *
 * Sampling and decoding run on the hetarch::exec engine: the shot
 * budget is split into 64-shot-aligned chunks, each chunk samples with
 * its own Rng::deriveStream child generator and decodes immediately,
 * so peak syndrome storage is one chunk (not the whole experiment) and
 * results are bit-identical for any thread count.
 */

#pragma once

#include <cstdint>

#include "core/rng.hh"
#include "qec/decoder_cache.hh"
#include "qec/noise_model.hh"
#include "stab/circuit.hh"
#include "stab/frame.hh"

namespace hetarch {
namespace qec {

/** Result of a decoded Monte-Carlo memory experiment. */
struct MemoryResult
{
    std::size_t shots = 0;
    std::size_t failures = 0;
    std::size_t rounds = 1;

    /** Logical error probability per shot. */
    double perShot() const
    {
        return shots ? static_cast<double>(failures) /
                           static_cast<double>(shots)
                     : 0.0;
    }
    /**
     * Logical error rate per round, from
     * P_shot = (1 - (1 - 2 p_round)^rounds) / 2.
     */
    double perRound() const;

    /** Exact comparison — the determinism contract is bit-identical. */
    bool operator==(const MemoryResult& o) const
    {
        return shots == o.shots && failures == o.failures &&
               rounds == o.rounds;
    }
};

/**
 * Sample @p shots shots of @p circuit, decode each, and count shots
 * where the decoder's prediction disagrees with *any* recorded
 * observable (all observables are XOR-compared, not just observable 0).
 *
 * For DecoderKind::UnionFind the circuit's detectors must be tagged
 * (kTagZ/kTagX); both graphs are decoded and their observable
 * predictions combined.
 *
 * Draws exactly one word from @p rng (the experiment's base stream
 * id); all sampling randomness is derived from it per chunk, so the
 * result depends only on the rng state at entry — not on the thread
 * count.  The shot-independent decoding setup comes from the shared
 * DecoderCache.
 */
MemoryResult runMemoryExperiment(const stab::Circuit& circuit,
                                 std::size_t shots, std::size_t rounds,
                                 DecoderKind decoder, Rng& rng);

/**
 * Decode every shot of a pre-sampled buffer against @p setup and count
 * logical failures (all observables compared).  This is the per-chunk
 * kernel of runMemoryExperiment, exposed so tests can cross-check the
 * chunked path against a whole-buffer decode.
 *
 * Shots are consumed straight from the packed buffer: one
 * detector-major pass per 64-shot word block enumerates each lane's
 * fired detectors, weight-0 shots bypass the decoder entirely (counted
 * by qec.decode.trivial_shots), and non-trivial shots are decoded
 * through the sparse entry points (decodeSparse) with reused scratch.
 */
std::size_t countLogicalFailures(const DecoderSetup& setup,
                                 DecoderKind decoder,
                                 const stab::DetectorSamples& samples);

/**
 * Convenience: logical error per cycle of the rotated surface code
 * memory-Z experiment (Figs. 6 and 7 of the paper).
 */
double surfaceLogicalErrorPerRound(std::size_t distance,
                                   std::size_t rounds,
                                   const CircuitNoise& noise,
                                   std::size_t shots, std::uint64_t seed);

} // namespace qec
} // namespace hetarch
