/**
 * @file
 * End-to-end memory-experiment harness: circuit -> detector error
 * model -> Monte-Carlo sampling -> decoding -> logical error rate.
 */

#pragma once

#include <cstdint>

#include "core/rng.hh"
#include "qec/noise_model.hh"
#include "stab/circuit.hh"

namespace hetarch {
namespace qec {

/** Result of a decoded Monte-Carlo memory experiment. */
struct MemoryResult
{
    std::size_t shots = 0;
    std::size_t failures = 0;
    std::size_t rounds = 1;

    /** Logical error probability per shot. */
    double perShot() const
    {
        return shots ? static_cast<double>(failures) /
                           static_cast<double>(shots)
                     : 0.0;
    }
    /**
     * Logical error rate per round, from
     * P_shot = (1 - (1 - 2 p_round)^rounds) / 2.
     */
    double perRound() const;
};

/** Decoder selection for runMemoryExperiment. */
enum class DecoderKind
{
    /** Weighted union-find on the tagged matching graphs. */
    UnionFind,
    /** Greedy DEM decoder (handles hyperedge mechanisms). */
    GreedyDem,
};

/**
 * Sample @p shots shots of @p circuit, decode each, and count logical
 * failures of observable 0.
 *
 * For DecoderKind::UnionFind the circuit's detectors must be tagged
 * (kTagZ/kTagX); both graphs are decoded and their observable
 * predictions combined.
 */
MemoryResult runMemoryExperiment(const stab::Circuit& circuit,
                                 std::size_t shots, std::size_t rounds,
                                 DecoderKind decoder, Rng& rng);

/**
 * Convenience: logical error per cycle of the rotated surface code
 * memory-Z experiment (Figs. 6 and 7 of the paper).
 */
double surfaceLogicalErrorPerRound(std::size_t distance,
                                   std::size_t rounds,
                                   const CircuitNoise& noise,
                                   std::size_t shots, std::uint64_t seed);

} // namespace qec
} // namespace hetarch
