/**
 * @file
 * CSS stabilizer code definitions.
 *
 * The Universal Error Correction module of the paper (Section 4.2.2)
 * is code-agnostic: it executes the stabilizer checks of *any* CSS code
 * up to 30 data qubits.  This header provides the code zoo evaluated in
 * the paper — surface codes, the Steane code, the 15-qubit Reed-Muller
 * code and a distance-5 triangular color code — in a generic
 * representation the UEC scheduler and the decoders consume.
 *
 * Substitution note: the paper's "17-qubit color code" is the 4.8.8
 * triangular code; we implement the [[19,1,5]] 6.6.6 triangular color
 * code, which plays the identical architectural role (a distance-5 2D
 * color code whose checks do not embed in a square lattice).  See
 * DESIGN.md.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hetarch {
namespace qec {

/** A CSS code with a single logical qubit. */
struct CssCode
{
    std::string name;
    std::size_t n = 0;            ///< number of data qubits
    std::size_t distance = 0;     ///< claimed code distance
    /** X-type check supports (qubits each X-stabilizer acts on). */
    std::vector<std::vector<std::uint32_t>> xChecks;
    /** Z-type check supports. */
    std::vector<std::vector<std::uint32_t>> zChecks;
    /** Support of one logical X representative. */
    std::vector<std::uint32_t> logicalX;
    /** Support of one logical Z representative. */
    std::vector<std::uint32_t> logicalZ;

    /** Number of encoded qubits n - rank(Hx) - rank(Hz). */
    std::size_t numLogical() const;

    /**
     * Sanity-check the definition: every X check commutes with every Z
     * check, checks are independent, k == 1, and the logicals commute
     * with all checks, anticommute with each other, and are not
     * stabilizers.  Fatal on violation.
     */
    void validate() const;

    /**
     * Minimum weight over the logical-Z coset (exhaustive over the
     * Z-stabilizer group; intended for codes with <= ~20 checks).
     */
    std::size_t minLogicalZWeight() const;
    /** Same for logical X. */
    std::size_t minLogicalXWeight() const;
};

/** Derive logical X/Z supports from the checks via GF(2) algebra. */
void computeLogicals(CssCode& code);

/** [[d, 1, d]] repetition code (Z-type checks only; bit-flip code). */
CssCode makeRepetition(std::size_t distance);

/** Steane [[7,1,3]] code. */
CssCode makeSteane();

/** 15-qubit Reed-Muller [[15,1,3]] code (punctured RM). */
CssCode makeReedMuller15();

/**
 * Triangular 6.6.6 color code of odd distance d:
 * [[ (3d^2+1)/4, 1, d ]].  d=3 gives the Steane code; d=5 gives the
 * 19-qubit code standing in for the paper's 17-qubit color code.
 */
CssCode makeColorCode(std::size_t distance);

/**
 * Rotated surface code [[d^2, 1, d]].  Data qubit (r, c) has index
 * r*d + c; logical Z runs along row 0, logical X along column 0.
 */
CssCode makeRotatedSurface(std::size_t distance);

/** The five codes evaluated in the paper's Tables 3/4 and Fig. 9/12. */
std::vector<CssCode> paperCodeZoo();

} // namespace qec
} // namespace hetarch
