#include "qec/css_code.hh"

#include <algorithm>
#include <bit>
#include <map>

#include "core/logging.hh"
#include "qec/gf2.hh"

namespace hetarch {
namespace qec {

namespace {

/** Parity of |a ^ b| restricted to the intersection. */
bool
oddOverlap(const std::vector<std::uint32_t>& a,
           const std::vector<std::uint32_t>& b)
{
    std::size_t common = 0;
    for (auto qa : a)
        for (auto qb : b)
            if (qa == qb)
                ++common;
    return common & 1;
}

/** Exhaustive min weight over support + span(group). */
std::size_t
minCosetWeight(const std::vector<std::uint32_t>& rep,
               const std::vector<std::vector<std::uint32_t>>& group,
               std::size_t n)
{
    HETARCH_ASSERT(group.size() <= 20,
                   "coset enumeration limited to 2^20 elements");
    std::vector<std::uint64_t> base((n + 63) / 64, 0);
    for (auto q : rep)
        base[q >> 6] ^= std::uint64_t(1) << (q & 63);

    std::vector<std::vector<std::uint64_t>> gens;
    for (const auto& g : group) {
        std::vector<std::uint64_t> v(base.size(), 0);
        for (auto q : g)
            v[q >> 6] ^= std::uint64_t(1) << (q & 63);
        gens.push_back(std::move(v));
    }

    std::size_t best = SIZE_MAX;
    const std::size_t total = std::size_t(1) << gens.size();
    std::vector<std::uint64_t> cur = base;
    // Gray-code walk so each step toggles one generator.
    std::size_t prev_gray = 0;
    for (std::size_t i = 0; i < total; ++i) {
        const std::size_t gray = i ^ (i >> 1);
        const std::size_t diff = gray ^ prev_gray;
        if (diff) {
            const auto g = static_cast<std::size_t>(
                std::countr_zero(static_cast<std::uint64_t>(diff)));
            for (std::size_t w = 0; w < cur.size(); ++w)
                cur[w] ^= gens[g][w];
        }
        prev_gray = gray;
        std::size_t weight = 0;
        for (auto w : cur)
            weight += static_cast<std::size_t>(std::popcount(w));
        best = std::min(best, weight);
    }
    return best;
}

} // namespace

std::size_t
CssCode::numLogical() const
{
    const auto hx = Gf2Matrix::fromSupports(xChecks, n);
    const auto hz = Gf2Matrix::fromSupports(zChecks, n);
    return n - hx.rank() - hz.rank();
}

void
CssCode::validate() const
{
    HETARCH_ASSERT(n > 0, "code has no qubits");
    for (const auto& xc : xChecks)
        for (const auto& zc : zChecks)
            if (oddOverlap(xc, zc))
                HETARCH_FATAL(name, ": X and Z checks anticommute");

    const auto hx = Gf2Matrix::fromSupports(xChecks, n);
    const auto hz = Gf2Matrix::fromSupports(zChecks, n);
    if (hx.rank() != xChecks.size())
        HETARCH_FATAL(name, ": dependent X checks");
    if (hz.rank() != zChecks.size())
        HETARCH_FATAL(name, ": dependent Z checks");
    if (numLogical() != 1)
        HETARCH_FATAL(name, ": expected k=1, got k=", numLogical());

    // Logical Z commutes with X checks, is not a Z stabilizer.
    for (const auto& xc : xChecks)
        if (oddOverlap(logicalZ, xc))
            HETARCH_FATAL(name, ": logical Z anticommutes with an X check");
    for (const auto& zc : zChecks)
        if (oddOverlap(logicalX, zc))
            HETARCH_FATAL(name, ": logical X anticommutes with a Z check");
    if (hz.inRowSpace(logicalZ))
        HETARCH_FATAL(name, ": logical Z is a stabilizer");
    if (hx.inRowSpace(logicalX))
        HETARCH_FATAL(name, ": logical X is a stabilizer");
    if (!oddOverlap(logicalX, logicalZ))
        HETARCH_FATAL(name, ": logicals do not anticommute");
}

std::size_t
CssCode::minLogicalZWeight() const
{
    return minCosetWeight(logicalZ, zChecks, n);
}

std::size_t
CssCode::minLogicalXWeight() const
{
    return minCosetWeight(logicalX, xChecks, n);
}

void
computeLogicals(CssCode& code)
{
    const auto hx = Gf2Matrix::fromSupports(code.xChecks, code.n);
    const auto hz = Gf2Matrix::fromSupports(code.zChecks, code.n);

    // Logical Z candidates: ker(Hx) minus rowspace(Hz).
    std::vector<std::vector<std::uint32_t>> z_cands;
    for (auto& v : hx.nullspaceBasis())
        if (!hz.inRowSpace(v))
            z_cands.push_back(std::move(v));
    HETARCH_ASSERT(!z_cands.empty(), code.name, ": no logical Z found");
    code.logicalZ = z_cands.front();

    // Logical X: ker(Hz) minus rowspace(Hx), anticommuting with logical Z.
    std::vector<std::vector<std::uint32_t>> x_cands;
    for (auto& v : hz.nullspaceBasis())
        if (!hx.inRowSpace(v))
            x_cands.push_back(std::move(v));
    HETARCH_ASSERT(!x_cands.empty(), code.name, ": no logical X found");

    for (const auto& v : x_cands) {
        if (oddOverlap(v, code.logicalZ)) {
            code.logicalX = v;
            return;
        }
    }
    // Try pairwise sums as a fallback (k > 1 bases can need mixing).
    for (std::size_t i = 0; i < x_cands.size(); ++i) {
        for (std::size_t j = i + 1; j < x_cands.size(); ++j) {
            std::vector<std::uint32_t> sum;
            std::set_symmetric_difference(
                x_cands[i].begin(), x_cands[i].end(), x_cands[j].begin(),
                x_cands[j].end(), std::back_inserter(sum));
            if (oddOverlap(sum, code.logicalZ) && !hx.inRowSpace(sum)) {
                code.logicalX = sum;
                return;
            }
        }
    }
    HETARCH_FATAL(code.name, ": no anticommuting logical X found");
}

CssCode
makeRepetition(std::size_t distance)
{
    HETARCH_ASSERT(distance >= 2, "repetition distance must be >= 2");
    CssCode code;
    code.name = "repetition-" + std::to_string(distance);
    code.n = distance;
    code.distance = distance;
    for (std::uint32_t i = 0; i + 1 < distance; ++i)
        code.zChecks.push_back({i, i + 1});
    code.logicalZ = {0};
    for (std::uint32_t i = 0; i < distance; ++i)
        code.logicalX.push_back(i);
    return code;
}

CssCode
makeSteane()
{
    CssCode code;
    code.name = "steane";
    code.n = 7;
    code.distance = 3;
    // Classical [7,4,3] Hamming parity checks.
    const std::vector<std::vector<std::uint32_t>> checks = {
        {3, 4, 5, 6},
        {1, 2, 5, 6},
        {0, 2, 4, 6},
    };
    code.xChecks = checks;
    code.zChecks = checks;
    code.logicalX = {0, 1, 2, 3, 4, 5, 6};
    code.logicalZ = {0, 1, 2, 3, 4, 5, 6};
    return code;
}

CssCode
makeReedMuller15()
{
    CssCode code;
    code.name = "reed-muller-15";
    code.n = 15;
    code.distance = 3;
    // Qubit q (0-based) corresponds to the 4-bit vector q+1.
    auto bit_set = [](std::uint32_t v, int b) { return (v >> b) & 1; };
    // X checks: the four weight-8 first-order generators.
    for (int b = 0; b < 4; ++b) {
        std::vector<std::uint32_t> sup;
        for (std::uint32_t q = 0; q < 15; ++q)
            if (bit_set(q + 1, b))
                sup.push_back(q);
        code.xChecks.push_back(sup);
    }
    // Z checks: the same four plus the six weight-4 second-order terms.
    code.zChecks = code.xChecks;
    for (int b1 = 0; b1 < 4; ++b1) {
        for (int b2 = b1 + 1; b2 < 4; ++b2) {
            std::vector<std::uint32_t> sup;
            for (std::uint32_t q = 0; q < 15; ++q)
                if (bit_set(q + 1, b1) && bit_set(q + 1, b2))
                    sup.push_back(q);
            code.zChecks.push_back(sup);
        }
    }
    for (std::uint32_t q = 0; q < 15; ++q) {
        code.logicalX.push_back(q);
        code.logicalZ.push_back(q);
    }
    return code;
}

CssCode
makeColorCode(std::size_t distance)
{
    HETARCH_ASSERT(distance >= 3 && distance % 2 == 1,
                   "color code distance must be odd and >= 3");
    CssCode code;
    code.name = "color-" + std::to_string(distance);
    code.distance = distance;

    // Triangular patch of the 6.6.6 lattice: sites (r, c) with
    // 0 <= c <= r <= 3(d-1)/2.  A site is a plaquette centre when
    // (r + c) % 3 == 2, otherwise a qubit.
    const long rmax = static_cast<long>(3 * (distance - 1) / 2);
    std::map<std::pair<long, long>, std::uint32_t> qubit_index;
    auto is_site = [&](long r, long c) {
        return r >= 0 && c >= 0 && c <= r && r <= rmax;
    };
    auto is_plaquette = [&](long r, long c) { return (r + c) % 3 == 2; };

    for (long r = 0; r <= rmax; ++r) {
        for (long c = 0; c <= r; ++c) {
            if (!is_plaquette(r, c)) {
                const auto idx =
                    static_cast<std::uint32_t>(qubit_index.size());
                qubit_index[{r, c}] = idx;
            }
        }
    }
    code.n = qubit_index.size();

    static const long offsets[6][2] = {
        {-1, -1}, {-1, 0}, {0, 1}, {1, 1}, {1, 0}, {0, -1}};
    for (long r = 0; r <= rmax; ++r) {
        for (long c = 0; c <= r; ++c) {
            if (!is_plaquette(r, c))
                continue;
            std::vector<std::uint32_t> sup;
            for (const auto& off : offsets) {
                const long nr = r + off[0], nc = c + off[1];
                if (is_site(nr, nc) && !is_plaquette(nr, nc))
                    sup.push_back(qubit_index.at({nr, nc}));
            }
            std::sort(sup.begin(), sup.end());
            HETARCH_ASSERT(sup.size() == 4 || sup.size() == 6,
                           "color plaquette with unexpected weight ",
                           sup.size());
            code.xChecks.push_back(sup);
            code.zChecks.push_back(sup);
        }
    }
    computeLogicals(code);
    return code;
}

CssCode
makeRotatedSurface(std::size_t distance)
{
    HETARCH_ASSERT(distance >= 2, "surface distance must be >= 2");
    const auto d = static_cast<long>(distance);
    CssCode code;
    code.name = "surface-" + std::to_string(distance);
    code.n = distance * distance;
    code.distance = distance;

    auto qubit = [&](long r, long c) {
        return static_cast<std::uint32_t>(r * d + c);
    };
    auto valid = [&](long r, long c) {
        return r >= 0 && r < d && c >= 0 && c < d;
    };

    for (long i = 0; i <= d; ++i) {
        for (long j = 0; j <= d; ++j) {
            std::vector<std::uint32_t> sup;
            for (const auto& [dr, dc] :
                 std::vector<std::pair<long, long>>{
                     {-1, -1}, {-1, 0}, {0, -1}, {0, 0}}) {
                if (valid(i + dr, j + dc))
                    sup.push_back(qubit(i + dr, j + dc));
            }
            const bool is_x = (i + j) % 2 == 0;
            if (sup.size() == 4) {
                std::sort(sup.begin(), sup.end());
                (is_x ? code.xChecks : code.zChecks).push_back(sup);
            } else if (sup.size() == 2) {
                // Boundary halves: X on top/bottom, Z on left/right.
                const bool top_bottom = (i == 0 || i == d);
                if ((is_x && top_bottom) || (!is_x && !top_bottom)) {
                    std::sort(sup.begin(), sup.end());
                    (is_x ? code.xChecks : code.zChecks).push_back(sup);
                }
            }
        }
    }
    // Logical Z along row 0; logical X along column 0.
    for (long c = 0; c < d; ++c)
        code.logicalZ.push_back(qubit(0, c));
    for (long r = 0; r < d; ++r)
        code.logicalX.push_back(qubit(r, 0));
    return code;
}

std::vector<CssCode>
paperCodeZoo()
{
    return {makeReedMuller15(), makeColorCode(5), makeSteane(),
            makeRotatedSurface(3), makeRotatedSurface(4)};
}

} // namespace qec
} // namespace hetarch
