#include "qec/dem_decoder.hh"

#include <algorithm>
#include <compare>

#include "core/logging.hh"

namespace hetarch {
namespace qec {

DemDecoder::DemDecoder(const stab::DetectorErrorModel& dem)
    : model(dem)
{
    for (std::size_t i = 0; i < dem.mechanisms.size(); ++i) {
        const auto& m = dem.mechanisms[i];
        if (m.detectors.empty())
            continue;
        auto [it, inserted] = exact.try_emplace(m.detectors, i);
        if (!inserted &&
            dem.mechanisms[it->second].probability < m.probability) {
            it->second = i;
        }
        byProbability.push_back(i);
    }
    std::sort(byProbability.begin(), byProbability.end(),
              [&](std::size_t a, std::size_t b) {
                  return dem.mechanisms[a].probability >
                         dem.mechanisms[b].probability;
              });
}

std::uint32_t
DemDecoder::decode(const std::vector<std::uint8_t>& detectors) const
{
    HETARCH_ASSERT(detectors.size() == model.numDetectors,
                   "syndrome size mismatch");

    std::vector<std::uint32_t> residual;
    for (std::uint32_t d = 0; d < detectors.size(); ++d)
        if (detectors[d])
            residual.push_back(d);
    std::vector<std::uint32_t> next;
    return decodeResidual(residual, next);
}

std::uint32_t
DemDecoder::decodeSparse(std::span<const std::uint32_t> fired)
{
    return decodeSparse(fired, residualBuf, nextBuf);
}

std::uint32_t
DemDecoder::decodeSparse(std::span<const std::uint32_t> fired,
                         std::vector<std::uint32_t>& residual,
                         std::vector<std::uint32_t>& next) const
{
    residual.assign(fired.begin(), fired.end());
    return decodeResidual(residual, next);
}

std::uint32_t
DemDecoder::decodeResidual(std::vector<std::uint32_t>& residual,
                           std::vector<std::uint32_t>& next) const
{
    if (residual.empty())
        return 0;

    std::uint32_t prediction = 0;

    // Greedy cover: repeatedly explain as much of the residual
    // syndrome as possible, preferring exact matches, then the
    // highest-probability mechanism that strictly shrinks the residual.
    for (int guard = 0; guard < 64 && !residual.empty(); ++guard) {
        if (auto it = exact.find(residual); it != exact.end()) {
            prediction ^= model.mechanisms[it->second].observables;
            return prediction;
        }
        // Best mechanism: maximize (overlap - outside), tie-break by
        // probability (byProbability order).
        std::size_t best = SIZE_MAX;
        long best_score = 0;
        for (auto mi : byProbability) {
            const auto& mech = model.mechanisms[mi];
            long overlap = 0;
            for (auto d : mech.detectors) {
                if (std::binary_search(residual.begin(), residual.end(),
                                       d))
                    ++overlap;
            }
            const long outside =
                static_cast<long>(mech.detectors.size()) - overlap;
            const long score = overlap - outside;
            if (score > best_score) {
                best_score = score;
                best = mi;
            }
        }
        if (best == SIZE_MAX)
            break; // nothing helps; give up with current prediction
        const auto& mech = model.mechanisms[best];
        prediction ^= mech.observables;
        next.clear();
        std::set_symmetric_difference(residual.begin(), residual.end(),
                                      mech.detectors.begin(),
                                      mech.detectors.end(),
                                      std::back_inserter(next));
        std::swap(residual, next);
    }
    return prediction;
}

std::size_t
DemDecoder::decodeBatch(std::span<const std::vector<std::uint32_t>> fired,
                        std::span<std::uint32_t> out,
                        std::vector<std::uint32_t>& residual,
                        std::vector<std::uint32_t>& next,
                        std::vector<std::uint32_t>& order) const
{
    HETARCH_ASSERT(out.size() >= fired.size(),
                   "decodeBatch output span too small");
    // Weight-0 shots take the fast path before the sort, so the sort
    // only pays for the non-trivial minority at low noise.
    order.clear();
    for (std::uint32_t i = 0; i < fired.size(); ++i) {
        if (fired[i].empty())
            out[i] = 0; // not counted as a dedup hit
        else
            order.push_back(i);
    }
    std::sort(order.begin(), order.end(),
              [&fired](std::uint32_t a, std::uint32_t b) {
                  const auto& fa = fired[a];
                  const auto& fb = fired[b];
                  if (fa.size() != fb.size())
                      return fa.size() < fb.size();
                  const auto c = std::lexicographical_compare_three_way(
                      fa.begin(), fa.end(), fb.begin(), fb.end());
                  if (c != 0)
                      return c < 0;
                  return a < b;
              });
    std::size_t dedup_hits = 0;
    for (std::size_t k = 0; k < order.size(); ++k) {
        const auto shot = order[k];
        if (k > 0 && fired[shot] == fired[order[k - 1]]) {
            out[shot] = out[order[k - 1]];
            ++dedup_hits;
            continue;
        }
        out[shot] = decodeSparse(fired[shot], residual, next);
    }
    return dedup_hits;
}

} // namespace qec
} // namespace hetarch
