#include "qec/dem_decoder.hh"

#include <algorithm>

#include "core/logging.hh"

namespace hetarch {
namespace qec {

DemDecoder::DemDecoder(const stab::DetectorErrorModel& dem)
    : model(dem)
{
    for (std::size_t i = 0; i < dem.mechanisms.size(); ++i) {
        const auto& m = dem.mechanisms[i];
        if (m.detectors.empty())
            continue;
        auto [it, inserted] = exact.try_emplace(m.detectors, i);
        if (!inserted &&
            dem.mechanisms[it->second].probability < m.probability) {
            it->second = i;
        }
        byProbability.push_back(i);
    }
    std::sort(byProbability.begin(), byProbability.end(),
              [&](std::size_t a, std::size_t b) {
                  return dem.mechanisms[a].probability >
                         dem.mechanisms[b].probability;
              });
}

std::uint32_t
DemDecoder::decode(const std::vector<std::uint8_t>& detectors) const
{
    HETARCH_ASSERT(detectors.size() == model.numDetectors,
                   "syndrome size mismatch");

    std::vector<std::uint32_t> residual;
    for (std::uint32_t d = 0; d < detectors.size(); ++d)
        if (detectors[d])
            residual.push_back(d);
    std::vector<std::uint32_t> next;
    return decodeResidual(residual, next);
}

std::uint32_t
DemDecoder::decodeSparse(std::span<const std::uint32_t> fired)
{
    return decodeSparse(fired, residualBuf, nextBuf);
}

std::uint32_t
DemDecoder::decodeSparse(std::span<const std::uint32_t> fired,
                         std::vector<std::uint32_t>& residual,
                         std::vector<std::uint32_t>& next) const
{
    residual.assign(fired.begin(), fired.end());
    return decodeResidual(residual, next);
}

std::uint32_t
DemDecoder::decodeResidual(std::vector<std::uint32_t>& residual,
                           std::vector<std::uint32_t>& next) const
{
    if (residual.empty())
        return 0;

    std::uint32_t prediction = 0;

    // Greedy cover: repeatedly explain as much of the residual
    // syndrome as possible, preferring exact matches, then the
    // highest-probability mechanism that strictly shrinks the residual.
    for (int guard = 0; guard < 64 && !residual.empty(); ++guard) {
        if (auto it = exact.find(residual); it != exact.end()) {
            prediction ^= model.mechanisms[it->second].observables;
            return prediction;
        }
        // Best mechanism: maximize (overlap - outside), tie-break by
        // probability (byProbability order).
        std::size_t best = SIZE_MAX;
        long best_score = 0;
        for (auto mi : byProbability) {
            const auto& mech = model.mechanisms[mi];
            long overlap = 0;
            for (auto d : mech.detectors) {
                if (std::binary_search(residual.begin(), residual.end(),
                                       d))
                    ++overlap;
            }
            const long outside =
                static_cast<long>(mech.detectors.size()) - overlap;
            const long score = overlap - outside;
            if (score > best_score) {
                best_score = score;
                best = mi;
            }
        }
        if (best == SIZE_MAX)
            break; // nothing helps; give up with current prediction
        const auto& mech = model.mechanisms[best];
        prediction ^= mech.observables;
        next.clear();
        std::set_symmetric_difference(residual.begin(), residual.end(),
                                      mech.detectors.begin(),
                                      mech.detectors.end(),
                                      std::back_inserter(next));
        std::swap(residual, next);
    }
    return prediction;
}

} // namespace qec
} // namespace hetarch
