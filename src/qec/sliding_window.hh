/**
 * @file
 * Sliding-window streaming decoder: the one decode kernel behind both
 * the batch memory experiment and the streaming engine.
 *
 * The kernel consumes a 64-shot batch as a sequence of per-round
 * SyndromeBlocks (see stab/frame.hh) and decodes it in one of two
 * modes:
 *
 *   - **Whole-buffer** (windowRounds == 0 or >= rounds): blocks are
 *     assembled into the batch's full detector column and decoded in a
 *     single pass at finishBatch().  This is bit-identical — same
 *     fired-detector extraction order, same sparse decoder call
 *     sequence — to the historical countLogicalFailures() loop, so the
 *     batch API is literally "window spans the whole buffer".
 *
 *   - **Sliding-window** (windowRounds < rounds, union-find only): a
 *     window of W rounds is decoded whenever it fills; the first C
 *     rounds of the window are *committed* — correction edges whose
 *     earliest endpoint lies in the commit region XOR their
 *     observable masks into the running per-lane prediction — and
 *     edges crossing the commit boundary flip a carried defect at
 *     their retained endpoint.  Edges entirely beyond the boundary
 *     are discarded and re-decoded in the next window.  Peak syndrome
 *     storage is the defects of W rounds plus the carry, independent
 *     of the total round count.
 *
 * The commit rule is sound because every edge incident to a
 * commit-region node has its earliest endpoint in the commit region:
 * applying exactly the committed edges resolves every commit-region
 * defect, and the carried flips record precisely the parity the
 * committed edges deposited on retained rounds.
 *
 * Telemetry: the kernel accumulates plain (non-atomic) statistics so
 * each driver can publish exactly the counters its contract pins —
 * the batch drivers emit the legacy qec.decode.* values unchanged,
 * the streaming driver adds qec.stream.*.  Per-window decode latency
 * is recorded directly into the advisory qec.stream.window_decode_ns
 * histogram.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "obs/obs.hh"
#include "qec/decoder_cache.hh"
#include "stab/frame.hh"

namespace hetarch {
namespace qec {

/** Windowing parameters of a SlidingWindowDecoder. */
struct WindowConfig
{
    /**
     * Rounds per decode window; 0 (or anything >= the circuit's round
     * count) selects the whole-buffer mode.
     */
    std::size_t windowRounds = 0;
    /**
     * Rounds committed per window step (1..windowRounds); 0 picks
     * half the window, minimum 1.
     */
    std::size_t commitRounds = 0;
};

/**
 * Streaming decode kernel over one DecoderSetup.  Not thread-safe;
 * create one per worker (construction only binds the shared graphs).
 *
 * Usage per 64-shot batch: beginBatch(lanes), pushBlock() for every
 * round in order (or pushBufferColumn() for a pre-assembled buffer),
 * then finishBatch() which returns the batch's logical failures.
 */
class SlidingWindowDecoder
{
  public:
    /** Plain accumulated statistics; read via stats(). */
    struct Stats
    {
        std::uint64_t shots = 0;
        std::uint64_t failures = 0;
        std::uint64_t trivialShots = 0; ///< weight-0 decoder bypasses
        obs::LocalHistogram syndromeWeights; ///< per-shot fired count
        // Streaming extras (windowed mode; blocks count in any mode).
        std::uint64_t blocks = 0;        ///< SyndromeBlocks consumed
        std::uint64_t windows = 0;       ///< window decode points
        std::uint64_t laneDecodes = 0;   ///< non-empty per-lane decodes
        std::uint64_t committedRounds = 0;
        std::uint64_t carryDefects = 0;  ///< defects carried forward
        std::uint64_t decodeNs = 0; ///< decode wall time (if timing on)
        // Shot-batched buffer decode (decodeBuffer only).
        std::uint64_t batchBlocks = 0; ///< word blocks decoded
        std::uint64_t batchShots = 0;  ///< shots through decodeBuffer
        std::uint64_t dedupHits = 0;   ///< duplicate-syndrome reuses
    };

    /**
     * Shots-per-block granularity of decodeBuffer(), in 64-shot words.
     * Fixed (not tied to the sampler's configurable SIMD width) so the
     * decoder's batching — and therefore its dedup telemetry — is
     * invariant under HETARCH_SIMD_WIDTH and worker count alike.
     */
    static constexpr std::size_t kDecodeBlockWords = 4;

    SlidingWindowDecoder(const DecoderSetup& setup, DecoderKind kind,
                         const WindowConfig& config = {});

    /** Whether the kernel runs in sliding-window mode. */
    bool windowed() const { return isWindowed; }
    /** Rounds (program slices) per shot. */
    std::size_t numRounds() const { return nRounds; }
    /** Effective window size in rounds (numRounds() when batch). */
    std::size_t effectiveWindow() const { return window; }
    /** Effective commit stride (numRounds() when batch). */
    std::size_t effectiveCommit() const { return commit; }
    /**
     * Upper bound on simultaneously stored syndrome rounds: the
     * window in windowed mode (independent of the round count), the
     * full buffer otherwise.
     */
    std::size_t peakStoredRounds() const { return window; }

    const Stats& stats() const { return acc; }

    /** Start a batch of @p lanes shots (1..64). */
    void beginBatch(std::size_t lanes);

    /**
     * Consume one round's SyndromeBlock.  Blocks must arrive in slice
     * order; in windowed mode full windows decode immediately, so the
     * block's storage can be recycled as soon as the call returns.
     */
    void pushBlock(const stab::SyndromeBlock& block);

    /**
     * Whole-buffer convenience: ingest 64-shot column @p w of a packed
     * sample buffer (all rounds at once).  Whole-buffer mode only.
     */
    void pushBufferColumn(const stab::DetectorSamples& samples,
                          std::size_t w);

    /**
     * Finish the batch: decode (whole-buffer mode) or reconcile the
     * final window (windowed mode), compare predictions against the
     * recorded observables, and return the batch's failure count.
     */
    std::size_t finishBatch();

    /**
     * Shot-batched whole-buffer decode: consume an entire packed
     * sample buffer in kDecodeBlockWords-word blocks (up to 256 shots
     * each) and return its total logical-failure count.
     *
     * Failures, trivial-shot counts and syndrome-weight records are
     * identical to driving the kernel word-by-word through
     * beginBatch()/pushBufferColumn()/finishBatch(): fired-detector
     * extraction still scans detector-major packed words, and every
     * shot's prediction still comes from the same sparse decoder calls
     * (batching only reorders pure per-shot decodes and reuses masks
     * of lexicographically identical syndromes — see
     * UnionFindDecoder::decodeBatch).  On top, the block entry
     * amortizes the decoder arena across up to 256 shots and fills the
     * batch-decode stats (batchBlocks / batchShots / dedupHits).
     * Whole-buffer mode only.
     */
    std::size_t decodeBuffer(const stab::DetectorSamples& samples);

  private:
    void decodeWindow(std::size_t window_end, std::size_t commit_end);
    void decodeWindowLane(std::size_t graph, std::size_t lane,
                          std::size_t commit_end, bool final_window);

    const DecoderSetup& setup;
    DecoderKind kind;
    bool isWindowed = false;
    std::size_t nRounds = 1;
    std::size_t window = 1;
    std::size_t commit = 1;

    UnionFindDecoder decZ;
    UnionFindDecoder decX;

    Stats acc;

    // --- per-batch state --------------------------------------------
    std::size_t lanes = 0;
    std::size_t pushedRounds = 0;
    std::size_t windowBase = 0;
    std::vector<std::uint64_t> obsAccum; ///< per-observable lane word
    std::array<std::uint32_t, 64> predicted{};
    std::array<std::uint32_t, 64> shotWeight{};

    // Whole-buffer mode: the batch's full detector column.
    std::vector<std::uint64_t> detColumn;

    // Windowed mode: per-graph per-lane pending defect node ids
    // (sorted ascending; node order follows round order).  This *is*
    // the bounded syndrome storage.
    std::array<std::array<std::vector<std::uint32_t>, 64>, 2> pending;
    /** Round of each graph node (windowed mode only). */
    std::array<std::vector<std::uint32_t>, 2> nodeRound;

    // Reused scratch.
    std::array<std::vector<std::uint32_t>, 64> blockFired;
    std::vector<std::uint32_t> nodesBuf;
    std::vector<std::uint32_t> edgesBuf;
    std::vector<std::uint32_t> flipsBuf;
    std::vector<std::uint32_t> keepBuf;
    std::vector<std::uint32_t> residual; ///< greedy scratch
    std::vector<std::uint32_t> residualNext;

    // decodeBuffer block scratch: per-shot fired/projected lists and
    // masks for one kDecodeBlockWords-word block (cleared, never
    // shrunk).
    std::vector<std::vector<std::uint32_t>> bufFired;
    std::vector<std::vector<std::uint32_t>> projZ;
    std::vector<std::vector<std::uint32_t>> projX;
    std::vector<std::uint32_t> maskA;
    std::vector<std::uint32_t> maskB;
    std::vector<std::uint32_t> batchOrder; ///< greedy decodeBatch order
};

} // namespace qec
} // namespace hetarch
