#include "qec/union_find.hh"

#include <algorithm>
#include <cmath>
#include <compare>
#include <map>

#include "core/logging.hh"

namespace hetarch {
namespace qec {

namespace {

/** Combine probabilities of two independent mechanisms with the same
 * effect: exactly one of them firing. */
double
combineP(double a, double b)
{
    return a * (1.0 - b) + b * (1.0 - a);
}

std::int32_t
weightFromProbability(double p)
{
    p = std::clamp(p, 1e-12, 0.5);
    const double llr = std::log((1.0 - p) / p);
    const auto w = static_cast<std::int32_t>(std::lround(llr));
    return 2 * std::clamp(w, 1, 30);
}

} // namespace

DecodingGraph
DecodingGraph::fromDem(const stab::DetectorErrorModel& dem,
                       const std::vector<std::uint32_t>& tags,
                       std::uint32_t wanted_tag, bool carries_observables)
{
    HETARCH_ASSERT(tags.size() == dem.numDetectors,
                   "tag list size mismatch");
    DecodingGraph g;
    g.det2node.assign(dem.numDetectors, -1);
    for (std::size_t d = 0; d < dem.numDetectors; ++d) {
        if (tags[d] == wanted_tag)
            g.det2node[d] = static_cast<std::int32_t>(g.nNodes++);
    }

    // key = (u, v) with boundary encoded as -1; candidate obs variants
    // tracked with their probabilities so the dominant one wins.
    struct Candidate
    {
        double p = 0.0;
        std::map<std::uint32_t, double> byObs;
    };
    std::map<std::pair<std::int32_t, std::int32_t>, Candidate> edge_map;

    auto add_edge = [&](std::int32_t u, std::int32_t v, double p,
                        std::uint32_t obs) {
        if (u > v)
            std::swap(u, v);
        auto& cand = edge_map[{u, v}];
        cand.p = combineP(cand.p, p);
        cand.byObs[obs] += p;
    };

    std::vector<const stab::ErrorMechanism*> deferred;
    for (const auto& mech : dem.mechanisms) {
        std::vector<std::int32_t> nodes;
        for (auto d : mech.detectors)
            if (g.det2node[d] >= 0)
                nodes.push_back(g.det2node[d]);
        if (nodes.empty())
            continue;
        const std::uint32_t obs =
            carries_observables ? mech.observables : 0;
        if (nodes.size() == 1) {
            add_edge(-1, nodes[0], mech.probability, obs);
        } else if (nodes.size() == 2) {
            add_edge(nodes[0], nodes[1], mech.probability, obs);
        } else {
            deferred.push_back(&mech);
        }
    }

    // Decompose >2-detector mechanisms onto existing elementary edges.
    auto has_key = [&](std::int32_t u, std::int32_t v) {
        if (u > v)
            std::swap(u, v);
        return edge_map.count({u, v}) > 0;
    };
    for (const auto* mech : deferred) {
        std::vector<std::int32_t> rest;
        for (auto d : mech->detectors)
            if (g.det2node[d] >= 0)
                rest.push_back(g.det2node[d]);
        bool clean = true;
        while (rest.size() >= 2) {
            bool found = false;
            for (std::size_t i = 0; i < rest.size() && !found; ++i) {
                for (std::size_t j = i + 1; j < rest.size() && !found;
                     ++j) {
                    if (has_key(rest[i], rest[j])) {
                        // Reuse the elementary edge's own observable
                        // mask: the decomposition parity works out
                        // because the elementary mechanisms exist.
                        auto& cand = edge_map[{std::min(rest[i], rest[j]),
                                               std::max(rest[i], rest[j])}];
                        cand.p = combineP(cand.p, mech->probability);
                        rest.erase(rest.begin() +
                                   static_cast<std::ptrdiff_t>(j));
                        rest.erase(rest.begin() +
                                   static_cast<std::ptrdiff_t>(i));
                        found = true;
                    }
                }
            }
            if (!found) {
                // Fallback: pair the two closest ids.
                add_edge(rest[0], rest[1], mech->probability, 0);
                rest.erase(rest.begin(), rest.begin() + 2);
                clean = false;
            }
        }
        if (rest.size() == 1) {
            if (has_key(-1, rest[0])) {
                auto& cand = edge_map[{-1, rest[0]}];
                cand.p = combineP(cand.p, mech->probability);
            } else {
                add_edge(-1, rest[0], mech->probability,
                         carries_observables ? mech->observables : 0);
                clean = false;
            }
        }
        if (!clean)
            ++g.undecomposed;
    }

    g.inc.assign(g.nNodes, {});
    for (const auto& [key, cand] : edge_map) {
        GraphEdge e;
        // key is (min, max), so a boundary (-1) always lands in first.
        e.u = key.second;
        e.v = key.first;
        e.probability = cand.p;
        double best_p = -1.0;
        for (const auto& [obs, p] : cand.byObs) {
            if (p > best_p) {
                best_p = p;
                e.observables = obs;
            }
        }
        e.weight = weightFromProbability(cand.p);
        const auto id = static_cast<std::int32_t>(g.edgeList.size());
        g.edgeList.push_back(e);
        g.inc[static_cast<std::size_t>(e.u)].push_back(id);
        if (e.v >= 0)
            g.inc[static_cast<std::size_t>(e.v)].push_back(id);
    }
    return g;
}

std::vector<std::uint8_t>
DecodingGraph::projectSyndrome(
    const std::vector<std::uint8_t>& detectors) const
{
    HETARCH_ASSERT(detectors.size() == det2node.size(),
                   "syndrome size mismatch");
    std::vector<std::uint8_t> out(nNodes, 0);
    for (std::size_t d = 0; d < detectors.size(); ++d)
        if (det2node[d] >= 0)
            out[static_cast<std::size_t>(det2node[d])] = detectors[d];
    return out;
}

void
DecodingGraph::projectSparse(std::span<const std::uint32_t> fired,
                             std::vector<std::uint32_t>& out) const
{
    for (auto d : fired) {
        HETARCH_DEBUG_ASSERT(d < det2node.size(), "detector id ", d,
                             " out of range");
        const auto node = det2node[d];
        if (node >= 0)
            out.push_back(static_cast<std::uint32_t>(node));
    }
}

UnionFindDecoder::UnionFindDecoder(const DecodingGraph& graph)
    : g(graph)
{
    const std::size_t slots = g.numNodes() + 1; // + virtual boundary
    nodeEpoch.assign(slots, 0);
    adjNodeEpoch.assign(slots, 0);
    visitedEpoch.assign(slots, 0);
    parent.assign(slots, 0);
    odd.assign(slots, 0);
    touchesBoundary.assign(slots, 0);
    materialized.assign(slots, 0);
    defect.assign(slots, 0);
    frontier.resize(slots);
    members.resize(slots);
    adj.resize(slots);
    parentEdge.assign(slots, {SIZE_MAX, SIZE_MAX});
    edgeEpoch.assign(g.edges().size(), 0);
    grown.assign(g.edges().size(), 0);
}

void
UnionFindDecoder::touchNode(std::size_t v)
{
    if (nodeEpoch[v] == epoch)
        return;
    nodeEpoch[v] = epoch;
    const std::size_t boundary = g.numNodes();
    parent[v] = static_cast<std::int32_t>(v);
    odd[v] = 0;
    touchesBoundary[v] = v == boundary;
    materialized[v] = v == boundary;
    defect[v] = 0;
    frontier[v].clear();
    members[v].clear();
    members[v].push_back(static_cast<std::int32_t>(v));
    touchedNodes.push_back(v);
}

std::vector<std::pair<std::size_t, std::size_t>>&
UnionFindDecoder::adjOf(std::size_t v)
{
    if (adjNodeEpoch[v] != epoch) {
        adjNodeEpoch[v] = epoch;
        adj[v].clear();
    }
    return adj[v];
}

std::size_t
UnionFindDecoder::findRoot(std::size_t x)
{
    while (parent[x] != static_cast<std::int32_t>(x)) {
        parent[x] = parent[static_cast<std::size_t>(parent[x])];
        x = static_cast<std::size_t>(parent[x]);
    }
    return x;
}

std::size_t
UnionFindDecoder::unite(std::size_t a, std::size_t b)
{
    std::size_t ra = findRoot(a), rb = findRoot(b);
    if (ra == rb)
        return ra;
    // Union by member count; ties keep the first argument's root, as
    // in the dense reference.
    if (members[ra].size() < members[rb].size())
        std::swap(ra, rb);
    parent[rb] = static_cast<std::int32_t>(ra);
    odd[ra] ^= odd[rb];
    touchesBoundary[ra] |= touchesBoundary[rb];
    members[ra].insert(members[ra].end(), members[rb].begin(),
                       members[rb].end());
    members[rb].clear();
    frontier[ra].insert(frontier[ra].end(), frontier[rb].begin(),
                        frontier[rb].end());
    frontier[rb].clear();
    return ra;
}

std::uint32_t
UnionFindDecoder::decodeSparse(std::span<const std::uint32_t> fired,
                               std::vector<std::uint32_t>* applied_edges)
{
    const std::size_t n = g.numNodes();
    const std::size_t boundary = n; // virtual boundary node id
    if (fired.empty())
        return 0;

    ++epoch;
    worklist.clear();
    touchedNodes.clear();
    grownEdges.clear();

    touchNode(boundary);
    for (auto v : fired) {
        HETARCH_DEBUG_ASSERT(v < n, "node id ", v, " out of range");
        touchNode(v);
        odd[v] = 1;
        defect[v] = 1;
        frontier[v] = g.incidence()[v];
        materialized[v] = 1;
        worklist.push_back(v);
    }

    // --- growth ------------------------------------------------------
    // Round-robin: grow every active cluster's frontier by one unit
    // until all clusters are neutral (even parity or boundary-touching).
    // Same schedule as the dense reference; only the state storage
    // differs (lazily re-initialized arena instead of fresh vectors).
    bool progress = true;
    while (progress) {
        progress = false;
        rootsBuf.clear();
        for (auto v : worklist) {
            const auto r = findRoot(v);
            if (odd[r] && !touchesBoundary[r])
                rootsBuf.push_back(r);
        }
        std::sort(rootsBuf.begin(), rootsBuf.end());
        rootsBuf.erase(std::unique(rootsBuf.begin(), rootsBuf.end()),
                       rootsBuf.end());
        if (rootsBuf.empty())
            break;

        for (auto r : rootsBuf) {
            if (findRoot(r) != r || !odd[r] || touchesBoundary[r])
                continue; // merged or neutralized earlier this sweep
            keepBuf.clear();
            edgesNowBuf = frontier[r];
            frontier[r].clear();
            for (auto eid : edgesNowBuf) {
                const auto e_idx = static_cast<std::size_t>(eid);
                const auto& e = g.edges()[e_idx];
                if (edgeEpoch[e_idx] != epoch) {
                    edgeEpoch[e_idx] = epoch;
                    grown[e_idx] = 0;
                }
                if (grown[e_idx] >= e.weight) {
                    continue; // already fully grown and merged
                }
                grown[e_idx] += 2;
                progress = true;
                if (grown[e_idx] >= e.weight) {
                    grownEdges.push_back(e_idx);
                    const std::size_t a = static_cast<std::size_t>(e.u);
                    const std::size_t b =
                        e.v < 0 ? boundary : static_cast<std::size_t>(e.v);
                    // Materialize far endpoints' incident edges.
                    for (std::size_t endpoint : {a, b}) {
                        touchNode(endpoint);
                        if (endpoint != boundary &&
                            !materialized[endpoint]) {
                            materialized[endpoint] = 1;
                            const auto er = findRoot(endpoint);
                            frontier[er].insert(
                                frontier[er].end(),
                                g.incidence()[endpoint].begin(),
                                g.incidence()[endpoint].end());
                        }
                    }
                    const auto nr = unite(unite(a, b), r);
                    worklist.push_back(nr);
                } else {
                    keepBuf.push_back(eid);
                }
            }
            const auto r2 = findRoot(r);
            frontier[r2].insert(frontier[r2].end(), keepBuf.begin(),
                                keepBuf.end());
        }
    }

    // --- peeling ------------------------------------------------------
    // For each cluster, build a spanning forest of fully grown edges
    // and peel from the leaves, emitting correction edges.  Roots are
    // visited in ascending id order and adjacency lists are built in
    // ascending edge-id order so the spanning trees — and with them the
    // emitted corrections — match the dense reference bit for bit.
    std::uint32_t correction = 0;

    std::sort(grownEdges.begin(), grownEdges.end());
    for (auto eid : grownEdges) {
        const auto& e = g.edges()[eid];
        const std::size_t a = static_cast<std::size_t>(e.u);
        const std::size_t b =
            e.v < 0 ? boundary : static_cast<std::size_t>(e.v);
        adjOf(a).push_back({b, eid});
        adjOf(b).push_back({a, eid});
    }

    std::sort(touchedNodes.begin(), touchedNodes.end());
    for (auto r : touchedNodes) {
        if (findRoot(r) != r || members[r].empty())
            continue;
        // Pick a tree root: boundary if in this cluster, else r itself.
        std::size_t tree_root = r;
        if (touchesBoundary[r]) {
            for (auto m : members[r]) {
                if (static_cast<std::size_t>(m) == boundary) {
                    tree_root = boundary;
                    break;
                }
            }
        }
        if (visitedEpoch[tree_root] == epoch)
            continue;
        // BFS spanning tree.
        orderBuf.clear();
        visitedEpoch[tree_root] = epoch;
        orderBuf.push_back(tree_root);
        for (std::size_t head = 0; head < orderBuf.size(); ++head) {
            const auto u = orderBuf[head];
            for (const auto& [w, eid] : adjOf(u)) {
                if (visitedEpoch[w] != epoch) {
                    visitedEpoch[w] = epoch;
                    parentEdge[w] = {u, eid};
                    orderBuf.push_back(w);
                }
            }
        }
        // Peel leaves-first (reverse BFS order).
        for (std::size_t k = orderBuf.size(); k-- > 1;) {
            const auto v = orderBuf[k];
            if (defect[v]) {
                const auto [p, eid] = parentEdge[v];
                correction ^= g.edges()[eid].observables;
                if (applied_edges)
                    applied_edges->push_back(
                        static_cast<std::uint32_t>(eid));
                defect[v] = 0;
                defect[p] ^= 1;
            }
        }
        defect[boundary] = 0; // boundary absorbs anything
    }
    return correction;
}

std::uint32_t
UnionFindDecoder::decode(const std::vector<std::uint8_t>& syndrome) const
{
    const std::size_t n = g.numNodes();
    HETARCH_ASSERT(syndrome.size() == n, "syndrome size mismatch");
    const std::size_t boundary = n; // virtual boundary node id

    // --- union-find state -------------------------------------------
    std::vector<std::int32_t> parent(n + 1);
    for (std::size_t i = 0; i <= n; ++i)
        parent[i] = static_cast<std::int32_t>(i);
    std::vector<std::uint8_t> odd(n + 1, 0);
    std::vector<std::uint8_t> touches_boundary(n + 1, 0);
    touches_boundary[boundary] = 1;

    auto find = [&](std::size_t x) {
        while (parent[x] != static_cast<std::int32_t>(x)) {
            parent[x] = parent[static_cast<std::size_t>(parent[x])];
            x = static_cast<std::size_t>(parent[x]);
        }
        return x;
    };

    std::vector<std::int32_t> grown(g.edges().size(), 0);
    // Frontier edge lists per root and cluster member lists.
    std::vector<std::vector<std::int32_t>> frontier(n + 1);
    std::vector<std::vector<std::int32_t>> members(n + 1);
    std::vector<std::uint8_t> materialized(n + 1, 0);

    std::vector<std::size_t> worklist;
    for (std::size_t v = 0; v < n; ++v) {
        members[v] = {static_cast<std::int32_t>(v)};
        if (syndrome[v]) {
            odd[v] = 1;
            frontier[v] = g.incidence()[v];
            materialized[v] = 1;
            worklist.push_back(v);
        }
    }
    members[boundary] = {static_cast<std::int32_t>(boundary)};
    materialized[boundary] = 1;

    auto unite = [&](std::size_t a, std::size_t b) {
        std::size_t ra = find(a), rb = find(b);
        if (ra == rb)
            return ra;
        // Union by member count.
        if (members[ra].size() < members[rb].size())
            std::swap(ra, rb);
        parent[rb] = static_cast<std::int32_t>(ra);
        odd[ra] ^= odd[rb];
        touches_boundary[ra] |= touches_boundary[rb];
        members[ra].insert(members[ra].end(), members[rb].begin(),
                           members[rb].end());
        members[rb].clear();
        frontier[ra].insert(frontier[ra].end(), frontier[rb].begin(),
                            frontier[rb].end());
        frontier[rb].clear();
        return ra;
    };

    // --- growth ------------------------------------------------------
    // Round-robin: grow every active cluster's frontier by one unit
    // until all clusters are neutral (even parity or boundary-touching).
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<std::size_t> roots;
        for (auto v : worklist) {
            const auto r = find(v);
            if (odd[r] && !touches_boundary[r])
                roots.push_back(r);
        }
        std::sort(roots.begin(), roots.end());
        roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
        if (roots.empty())
            break;

        for (auto r : roots) {
            if (find(r) != r || !odd[r] || touches_boundary[r])
                continue; // merged or neutralized earlier this sweep
            std::vector<std::int32_t> keep;
            auto edges_now = frontier[r];
            frontier[r].clear();
            for (auto eid : edges_now) {
                const auto& e = g.edges()[static_cast<std::size_t>(eid)];
                if (grown[static_cast<std::size_t>(eid)] >= e.weight) {
                    continue; // already fully grown and merged
                }
                grown[static_cast<std::size_t>(eid)] += 2;
                progress = true;
                if (grown[static_cast<std::size_t>(eid)] >= e.weight) {
                    const std::size_t a = static_cast<std::size_t>(e.u);
                    const std::size_t b =
                        e.v < 0 ? boundary : static_cast<std::size_t>(e.v);
                    // Materialize far endpoints' incident edges.
                    for (std::size_t endpoint : {a, b}) {
                        if (endpoint != boundary &&
                            !materialized[endpoint]) {
                            materialized[endpoint] = 1;
                            const auto er = find(endpoint);
                            frontier[er].insert(
                                frontier[er].end(),
                                g.incidence()[endpoint].begin(),
                                g.incidence()[endpoint].end());
                        }
                    }
                    const auto nr = unite(unite(a, b), r);
                    worklist.push_back(nr);
                } else {
                    keep.push_back(eid);
                }
            }
            const auto r2 = find(r);
            frontier[r2].insert(frontier[r2].end(), keep.begin(),
                                keep.end());
        }
    }

    // --- peeling ------------------------------------------------------
    // For each cluster, build a spanning forest of fully grown edges
    // and peel from the leaves, emitting correction edges.
    std::uint32_t correction = 0;
    std::vector<std::uint8_t> defect(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v)
        defect[v] = syndrome[v];

    // Adjacency restricted to fully grown edges.
    std::vector<std::size_t> cluster_of(n + 1, SIZE_MAX);
    std::vector<std::size_t> roots;
    for (std::size_t v = 0; v <= n; ++v) {
        if (find(v) == v && !members[v].empty())
            roots.push_back(v);
    }
    for (auto r : roots)
        for (auto m : members[r])
            cluster_of[static_cast<std::size_t>(m)] = r;

    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(
        n + 1); // node -> (neighbor, edge id)
    for (std::size_t eid = 0; eid < g.edges().size(); ++eid) {
        if (grown[eid] < g.edges()[eid].weight)
            continue;
        const auto& e = g.edges()[eid];
        const std::size_t a = static_cast<std::size_t>(e.u);
        const std::size_t b =
            e.v < 0 ? boundary : static_cast<std::size_t>(e.v);
        adj[a].push_back({b, eid});
        adj[b].push_back({a, eid});
    }

    std::vector<std::uint8_t> visited(n + 1, 0);
    for (auto r : roots) {
        // Pick a tree root: boundary if in this cluster, else r itself.
        std::size_t tree_root = r;
        if (touches_boundary[r]) {
            for (auto m : members[r]) {
                if (static_cast<std::size_t>(m) == boundary) {
                    tree_root = boundary;
                    break;
                }
            }
        }
        if (visited[tree_root])
            continue;
        // BFS spanning tree.
        std::vector<std::size_t> order;
        std::vector<std::pair<std::size_t, std::size_t>> parent_edge(
            n + 1, {SIZE_MAX, SIZE_MAX});
        visited[tree_root] = 1;
        order.push_back(tree_root);
        for (std::size_t head = 0; head < order.size(); ++head) {
            const auto u = order[head];
            for (const auto& [w, eid] : adj[u]) {
                if (!visited[w]) {
                    visited[w] = 1;
                    parent_edge[w] = {u, eid};
                    order.push_back(w);
                }
            }
        }
        // Peel leaves-first (reverse BFS order).
        for (std::size_t k = order.size(); k-- > 1;) {
            const auto v = order[k];
            if (defect[v]) {
                const auto [p, eid] = parent_edge[v];
                correction ^= g.edges()[eid].observables;
                defect[v] = 0;
                defect[p] ^= 1;
            }
        }
        defect[boundary] = 0; // boundary absorbs anything
    }
    return correction;
}

std::size_t
UnionFindDecoder::decodeBatch(
    std::span<const std::vector<std::uint32_t>> fired,
    std::span<std::uint32_t> out)
{
    HETARCH_ASSERT(out.size() >= fired.size(),
                   "decodeBatch output span too small");
    // Weight-0 shots take the fast path before the sort, so the sort
    // only pays for the non-trivial minority at low noise.
    auto& order = batchOrderBuf;
    order.clear();
    for (std::uint32_t i = 0; i < fired.size(); ++i) {
        if (fired[i].empty())
            out[i] = 0; // not counted as a dedup hit
        else
            order.push_back(i);
    }
    // Weight-ascending, then lexicographic so identical syndromes are
    // adjacent, then shot index to keep the order deterministic.
    std::sort(order.begin(), order.end(),
              [&fired](std::uint32_t a, std::uint32_t b) {
                  const auto& fa = fired[a];
                  const auto& fb = fired[b];
                  if (fa.size() != fb.size())
                      return fa.size() < fb.size();
                  const auto c = std::lexicographical_compare_three_way(
                      fa.begin(), fa.end(), fb.begin(), fb.end());
                  if (c != 0)
                      return c < 0;
                  return a < b;
              });
    std::size_t dedup_hits = 0;
    for (std::size_t k = 0; k < order.size(); ++k) {
        const auto shot = order[k];
        if (k > 0 && fired[shot] == fired[order[k - 1]]) {
            // decodeSparse is deterministic in its fired list, so an
            // identical syndrome must produce an identical mask.
            out[shot] = out[order[k - 1]];
            ++dedup_hits;
            continue;
        }
        out[shot] = decodeSparse(fired[shot]);
    }
    return dedup_hits;
}

} // namespace qec
} // namespace hetarch
