/**
 * @file
 * Dense GF(2) linear algebra on bit-packed rows.
 *
 * Used to derive logical operators of CSS codes, check linear
 * independence of stabilizer generators, and enumerate minimum-weight
 * logical representatives.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace hetarch {
namespace qec {

/** Dense GF(2) matrix; each row is a bit-packed vector of @p cols bits. */
class Gf2Matrix
{
  public:
    Gf2Matrix() = default;
    Gf2Matrix(std::size_t rows, std::size_t cols);

    /** Build from explicit support lists (row -> set columns). */
    static Gf2Matrix fromSupports(
        const std::vector<std::vector<std::uint32_t>>& supports,
        std::size_t cols);

    std::size_t rows() const { return body.size(); }
    std::size_t cols() const { return nCols; }

    bool get(std::size_t r, std::size_t c) const;
    void set(std::size_t r, std::size_t c, bool v);

    /** XOR row @p src into row @p dst. */
    void xorRow(std::size_t dst, std::size_t src);

    /** Append a row given by its support. */
    void appendRow(const std::vector<std::uint32_t>& support);

    /** Rank via Gaussian elimination (on a copy). */
    std::size_t rank() const;

    /**
     * Nullspace basis: all v with M v = 0, returned as support lists.
     */
    std::vector<std::vector<std::uint32_t>> nullspaceBasis() const;

    /**
     * True when @p vec (as support) lies in the row space.
     */
    bool inRowSpace(const std::vector<std::uint32_t>& vec) const;

  private:
    std::size_t nCols = 0;
    std::size_t nWords = 0;
    std::vector<std::vector<std::uint64_t>> body;
};

} // namespace qec
} // namespace hetarch
