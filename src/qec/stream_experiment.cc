#include "qec/stream_experiment.hh"

#include <utility>

#include "core/logging.hh"
#include "exec/block_queue.hh"
#include "exec/shot_scheduler.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace qec {

namespace {

// Streaming telemetry.  Counters are functions of the sampled data and
// the window configuration alone — bit-identical at any worker count
// (single consumer, FIFO order).  The stall histogram is advisory.
obs::Counter& cStreamShots = obs::counter("qec.stream.shots");
obs::Counter& cStreamBlocks = obs::counter("qec.stream.blocks");
obs::Counter& cStreamWindows = obs::counter("qec.stream.windows");
obs::Counter& cStreamLaneDecodes = obs::counter("qec.stream.lane_decodes");
obs::Counter& cStreamCommittedRounds =
    obs::counter("qec.stream.committed_rounds");
obs::Counter& cStreamCarryDefects =
    obs::counter("qec.stream.carry_defects");
obs::Histogram& hBackpressureWaitNs =
    obs::histogram("qec.stream.backpressure_wait_ns");

// Legacy decode telemetry: the streaming engine feeds the same
// counters the batch path pins, with identical values for identical
// sampled data (interned by name; defined in memory_experiment.cc).
obs::Counter& cShotsDecoded = obs::counter("qec.decode.shots");
obs::Counter& cLogicalFailures =
    obs::counter("qec.decode.logical_failures");
obs::Counter& cTrivialShots = obs::counter("qec.decode.trivial_shots");
obs::Counter& cShotsCompleted =
    obs::counter("exec.scheduler.shots_completed");
obs::Histogram& hSyndromeWeight = obs::histogram("qec.syndrome_weight");

} // namespace

StreamingResult
runStreamingMemoryExperiment(const stab::Circuit& circuit,
                             std::size_t shots, std::size_t rounds,
                             DecoderKind decoder, Rng& rng,
                             const StreamConfig& config)
{
    StreamingResult result;
    result.memory.shots = shots;
    result.memory.rounds = rounds;
    if (shots == 0)
        return result;

    const auto setup = DecoderCache::instance().get(circuit, decoder);
    const WindowConfig wc{config.windowRounds, config.commitRounds};
    SlidingWindowDecoder kernel(*setup, decoder, wc);
    result.windowRounds = kernel.effectiveWindow();
    result.commitRounds = kernel.effectiveCommit();
    result.peakStoredRounds = kernel.peakStoredRounds();

    // One draw fixes the base stream; each chunk derives its own
    // generator, exactly like runMemoryExperiment.
    const std::uint64_t base = rng();
    const exec::ShotScheduler sched(shots, config.chunkShots);

    std::size_t failures = 0;
    const auto consume = [&](stab::SyndromeBlock& block) {
        if (block.slice == 0)
            kernel.beginBatch(block.lanes);
        kernel.pushBlock(block);
        if (block.lastSliceOfBatch)
            failures += kernel.finishBatch();
    };

    // Pair sampler and decoder as concurrent pool tasks only when the
    // pool can actually run both at once; otherwise the producer
    // decodes each block inline — same FIFO order, identical result.
    const bool paired =
        exec::threadCount() >= 2 && !exec::inParallelRegion();
    result.paired = paired;

    // Both execution shapes issue the same parallelInvoke, so the
    // exec.* counters stay thread-count invariant; only where the
    // decode happens differs (queue handoff vs inline in the
    // producer), and the single FIFO decode stream is identical.
    std::uint64_t producer_wait_ns = 0;
    exec::BlockQueue<stab::SyndromeBlock> queue(config.queueBlocks);
    exec::parallelInvoke({
        [&] { // producer: sample blocks chunk by chunk
            stab::SyndromeBlock block;
            for (std::size_t i = 0; i < sched.numChunks(); ++i) {
                const auto chunk = sched.chunk(i);
                Rng chunk_rng =
                    exec::ShotScheduler::chunkRng(base, chunk.index);
                stab::DetectorStream stream(setup->program, chunk.count);
                while (true) {
                    if (paired)
                        queue.takeRecycled(block);
                    if (!stream.next(chunk_rng, block))
                        break;
                    if (paired) {
                        if (!queue.push(std::move(block),
                                        &producer_wait_ns))
                            return; // closed early (consumer died)
                    } else {
                        consume(block); // cooperative: decode inline
                    }
                }
                cShotsCompleted.add(chunk.count);
            }
            queue.close();
        },
        [&] { // consumer: the single decode stream (paired mode only)
            if (!paired)
                return;
            stab::SyndromeBlock block;
            while (queue.pop(block)) {
                consume(block);
                queue.recycle(std::move(block));
            }
        },
    });

    const auto& st = kernel.stats();
    HETARCH_ASSERT(st.shots == shots,
                   "streaming decode consumed a partial batch stream");
    result.memory.failures = failures;
    result.blocks = st.blocks;
    result.windows = st.windows;
    result.laneDecodes = st.laneDecodes;
    result.committedRounds = st.committedRounds;
    result.carryDefects = st.carryDefects;
    result.trivialShots = st.trivialShots;
    result.decodeNs = st.decodeNs;
    result.backpressureWaitNs = producer_wait_ns;

    // Deterministic counters: stream view plus the legacy decode set.
    cStreamShots.add(shots);
    cStreamBlocks.add(st.blocks);
    cStreamWindows.add(st.windows);
    cStreamLaneDecodes.add(st.laneDecodes);
    cStreamCommittedRounds.add(st.committedRounds);
    cStreamCarryDefects.add(st.carryDefects);
    cShotsDecoded.add(shots);
    cLogicalFailures.add(failures);
    cTrivialShots.add(st.trivialShots);
    hSyndromeWeight.merge(st.syndromeWeights);
    if (obs::timingEnabled())
        hBackpressureWaitNs.record(producer_wait_ns);

    return result;
}

} // namespace qec
} // namespace hetarch
