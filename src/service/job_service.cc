#include "service/job_service.hh"

#include "core/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"
#include "service/job_validation.hh"

namespace hetarch {
namespace service {

namespace {

obs::Counter& jobsSubmitted = obs::counter("service.jobs.submitted");
obs::Counter& jobsRejected = obs::counter("service.jobs.rejected");
obs::Counter& jobsCompleted = obs::counter("service.jobs.completed");
obs::Counter& jobsFailed = obs::counter("service.jobs.failed");
obs::Counter& jobsCancelled = obs::counter("service.jobs.cancelled");

} // namespace

JobService::JobService(ServiceConfig config)
    : config_(config), queue_(config.maxQueued)
{
    for (JobKind kind :
         {JobKind::Memory, JobKind::Stream, JobKind::SweepPoint,
          JobKind::Distill, JobKind::Analysis})
        runners_[static_cast<std::size_t>(kind)] = builtinRunner(kind);
    if (config_.autoStart)
        start();
}

JobService::~JobService()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
        for (JobId id = queue_.pop(); id != kInvalidJobId;
             id = queue_.pop()) {
            Job& job = *jobs_.at(id);
            job.state = JobState::Cancelled;
            jobsCancelled.add();
        }
        cvWork_.notify_all();
        cvState_.notify_all();
    }
    if (dispatcher_.joinable())
        dispatcher_.join();
}

SubmitOutcome
JobService::submit(JobSpec spec)
{
    const Validation validation = validateJob(spec);
    if (!validation.ok) {
        jobsRejected.add();
        SubmitOutcome outcome;
        outcome.error = validation.error;
        return outcome;
    }

    std::lock_guard<std::mutex> lk(mu_);
    SubmitOutcome outcome;
    if (stopping_) {
        jobsRejected.add();
        outcome.error = "service is shutting down";
        return outcome;
    }
    if (!queue_.push(nextId_, spec.priority)) {
        jobsRejected.add();
        outcome.error = "queue full (capacity " +
                        std::to_string(queue_.capacity()) + ")";
        return outcome;
    }
    auto job = std::make_unique<Job>();
    job->id = nextId_;
    job->spec = std::move(spec);
    outcome.id = nextId_;
    jobs_.emplace(nextId_, std::move(job));
    ++nextId_;
    jobsSubmitted.add();
    cvWork_.notify_one();
    return outcome;
}

bool
JobService::cancel(JobId id)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    Job& job = *it->second;
    switch (job.state) {
    case JobState::Queued:
        queue_.remove(id);
        job.state = JobState::Cancelled;
        jobsCancelled.add();
        cvState_.notify_all();
        return true;
    case JobState::Running:
        job.cancelRequested.store(true, std::memory_order_relaxed);
        return true;
    case JobState::Done:
    case JobState::Failed:
    case JobState::Cancelled:
        return false;
    }
    return false;
}

bool
JobService::status(JobId id, JobStatus& out) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    out = snapshot(*it->second);
    return true;
}

std::vector<JobStatus>
JobService::statusAll() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<JobStatus> all;
    all.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_)
        all.push_back(snapshot(*job));
    return all;
}

JobStatus
JobService::wait(JobId id)
{
    std::unique_lock<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        HETARCH_FATAL("wait on unknown job id ", id);
    Job& job = *it->second;
    cvState_.wait(lk, [&] { return isTerminalState(job.state); });
    return snapshot(job);
}

void
JobService::waitIdle()
{
    std::unique_lock<std::mutex> lk(mu_);
    cvState_.wait(lk, [&] { return idleLocked(); });
}

void
JobService::start()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (dispatcher_.joinable() || stopping_)
        return;
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

void
JobService::drain()
{
    if (dispatcher_.joinable())
        HETARCH_PANIC("drain() requires manual mode (autoStart = false)");
    std::unique_lock<std::mutex> lk(mu_);
    if (dispatching_)
        HETARCH_PANIC("drain() called concurrently");
    while (!queue_.empty())
        runBatch(lk);
}

void
JobService::setRunner(JobKind kind, JobRunner runner)
{
    std::lock_guard<std::mutex> lk(mu_);
    runners_[static_cast<std::size_t>(kind)] = std::move(runner);
}

std::size_t
JobService::queuedCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
}

void
JobService::dispatcherLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cvWork_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        runBatch(lk);
    }
}

void
JobService::runBatch(std::unique_lock<std::mutex>& lk)
{
    const std::vector<JobId> ids = queue_.popBatch(config_.maxConcurrent);
    std::vector<Job*> batch;
    batch.reserve(ids.size());
    for (JobId id : ids) {
        Job& job = *jobs_.at(id);
        job.state = JobState::Running;
        ++running_;
        batch.push_back(&job);
    }
    if (batch.empty())
        return;
    dispatching_ = true;
    lk.unlock();

    // A singleton batch runs inline so the experiment itself can use
    // the whole pool; a full batch fans out across jobs instead (the
    // pool serializes nested regions, so per-job work goes serial).
    if (batch.size() == 1) {
        runOne(*batch.front());
    } else {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(batch.size());
        for (Job* job : batch)
            tasks.emplace_back([this, job] { runOne(*job); });
        exec::parallelInvoke(tasks);
    }

    lk.lock();
    dispatching_ = false;
}

void
JobService::runOne(Job& job)
{
    JobRunner runner;
    {
        std::lock_guard<std::mutex> lk(mu_);
        runner = runners_[static_cast<std::size_t>(job.spec.kind)];
    }

    obs::Snapshot before;
    if (config_.captureMetrics)
        before = obs::Registry::instance().snapshot();

    JobContext ctx(job.id, job.cancelRequested);
    JobResult result;
    std::string error;
    bool failed = false;
    try {
        // Capture HETARCH_FATAL from experiment code: a bad spec that
        // slipped past validation fails the job, not the process.
        ScopedFatalCapture capture;
        result = runner(job.spec, ctx);
    } catch (const std::exception& e) {
        failed = true;
        error = e.what();
    } catch (...) {
        failed = true;
        error = "unknown runner error";
    }

    std::vector<std::pair<std::string, std::uint64_t>> delta;
    if (config_.captureMetrics) {
        delta = obs::counterDeltas(before,
                                   obs::Registry::instance().snapshot());
    }

    std::lock_guard<std::mutex> lk(mu_);
    --running_;
    job.metricsDelta = std::move(delta);
    if (failed) {
        job.state = JobState::Failed;
        job.error = std::move(error);
        jobsFailed.add();
    } else if (job.cancelRequested.load(std::memory_order_relaxed)) {
        // Cooperative cancellation: whatever the runner produced after
        // the request is discarded, the job retires as cancelled.
        job.state = JobState::Cancelled;
        jobsCancelled.add();
    } else {
        job.state = JobState::Done;
        job.result = std::move(result);
        jobsCompleted.add();
    }
    cvState_.notify_all();
}

JobStatus
JobService::snapshot(const Job& job) const
{
    JobStatus status;
    status.id = job.id;
    status.spec = job.spec;
    status.state = job.state;
    status.error = job.error;
    status.result = job.result;
    status.metricsDelta = job.metricsDelta;
    return status;
}

bool
JobService::idleLocked() const
{
    return queue_.empty() && running_ == 0;
}

} // namespace service
} // namespace hetarch
