/**
 * @file
 * Experiment jobs as first-class objects (`hetarch::service`).
 *
 * A JobSpec names one unit of work the job service can run — a memory
 * experiment (batch or streaming), a DSE sweep point, a distillation
 * ensemble, or a static analysis — plus the metadata the scheduler
 * needs (priority) and the determinism contract needs (a per-job
 * seed).  Parameters are a flat ordered list of named scalars (number
 * or string) so the wire protocol, validation, and the runners all
 * speak one shape.
 *
 * Job lifecycle:
 *
 *     queued -> running -> done
 *                       -> failed      (runner error)
 *            -> cancelled              (while queued)
 *               running -> cancelled   (cooperative, at phase bounds)
 *
 * A JobResult is an ordered list of named scalar fields.  Fields are
 * the *deterministic* payload: for a fixed spec (kind, params, seed)
 * they are bit-identical no matter how many workers the service runs
 * or which jobs share the process — that is what the service
 * determinism tests pin.  The advisory per-job obs counter delta
 * travels next to the result (JobStatus::metricsDelta), never in it.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hetarch {
namespace service {

/** What kind of experiment a job runs. */
enum class JobKind : std::uint8_t
{
    Memory,    ///< batch Monte-Carlo memory experiment
    Stream,    ///< streaming sliding-window memory experiment
    SweepPoint,///< one DSE grid point (logical error per round)
    Distill,   ///< entanglement-distillation ensemble
    Analysis,  ///< static lint / fault / schedule analysis
};

/** Wire name ("memory", "stream", "sweep-point", "distill", "analysis"). */
const char* jobKindName(JobKind kind);

/** Inverse of jobKindName; false when the name is unknown. */
bool parseJobKind(const std::string& name, JobKind& out);

/** Where a job is in its lifecycle. */
enum class JobState : std::uint8_t
{
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
};

/** Wire name ("queued", "running", "done", "failed", "cancelled"). */
const char* jobStateName(JobState state);

/** Inverse of jobStateName; false when the name is unknown. */
bool parseJobState(const std::string& name, JobState& out);

/** Done / Failed / Cancelled — the states a job can never leave. */
bool isTerminalState(JobState state);

/** Service-assigned job identifier; ids start at 1, 0 is invalid. */
using JobId = std::uint64_t;
inline constexpr JobId kInvalidJobId = 0;

/** One job parameter: a number or a string. */
struct ParamValue
{
    enum class Kind : std::uint8_t
    {
        Number,
        Text,
    };

    Kind kind = Kind::Number;
    double number = 0.0;
    std::string text;

    static ParamValue num(double v)
    {
        ParamValue p;
        p.kind = Kind::Number;
        p.number = v;
        return p;
    }
    static ParamValue str(std::string v)
    {
        ParamValue p;
        p.kind = Kind::Text;
        p.text = std::move(v);
        return p;
    }

    bool operator==(const ParamValue& o) const
    {
        return kind == o.kind && number == o.number && text == o.text;
    }
};

/** Everything a client says about one job. */
struct JobSpec
{
    /** Client label; free-form, need not be unique. */
    std::string name;
    JobKind kind = JobKind::Memory;
    /** Higher runs first; FIFO (submission order) within a priority. */
    std::int64_t priority = 0;
    /** Per-job base seed — the whole reproducibility contract. */
    std::uint64_t seed = 1;
    /** Kind-specific parameters, in client order. */
    std::vector<std::pair<std::string, ParamValue>> params;

    /** First parameter named @p key, or nullptr. */
    const ParamValue* find(const std::string& key) const;

    /** Numeric parameter @p key, or @p fallback when absent. */
    double numberOr(const std::string& key, double fallback) const;

    void add(std::string key, ParamValue value)
    {
        params.emplace_back(std::move(key), std::move(value));
    }

    bool operator==(const JobSpec& o) const
    {
        return name == o.name && kind == o.kind &&
               priority == o.priority && seed == o.seed &&
               params == o.params;
    }
};

/** One named scalar of a job result. */
struct ResultValue
{
    enum class Kind : std::uint8_t
    {
        U64,  ///< exact count (shots, failures, ...)
        Real, ///< derived rate / bound; round-trips bit-exactly
        Text, ///< symbolic value ("unbounded", decoder name, ...)
    };

    Kind kind = Kind::U64;
    std::uint64_t u64 = 0;
    double real = 0.0;
    std::string text;

    bool operator==(const ResultValue& o) const
    {
        return kind == o.kind && u64 == o.u64 && real == o.real &&
               text == o.text;
    }
};

/** Ordered deterministic result payload of a completed job. */
struct JobResult
{
    std::vector<std::pair<std::string, ResultValue>> fields;

    void addU64(std::string key, std::uint64_t v);
    void addReal(std::string key, double v);
    void addText(std::string key, std::string v);

    /** First field named @p key, or nullptr. */
    const ResultValue* find(const std::string& key) const;

    bool empty() const { return fields.empty(); }

    bool operator==(const JobResult& o) const
    {
        return fields == o.fields;
    }
};

/** Point-in-time view of one job (what status/watch report). */
struct JobStatus
{
    JobId id = kInvalidJobId;
    JobSpec spec;
    JobState state = JobState::Queued;
    /** Failure diagnostic (Failed) — empty otherwise. */
    std::string error;
    /** Deterministic result payload (Done) — empty otherwise. */
    JobResult result;
    /**
     * Advisory per-job obs counter delta (obs::counterDeltas around
     * the runner).  Exact when the service runs one job at a time;
     * with concurrent jobs the shared registry attributes overlapping
     * work, so this never joins a determinism comparison.
     */
    std::vector<std::pair<std::string, std::uint64_t>> metricsDelta;
};

} // namespace service
} // namespace hetarch
