/**
 * @file
 * Admission validation for job specs.
 *
 * validateJob() is the service's front door: every spec is checked
 * here *before* an id is assigned, so a malformed job is rejected
 * synchronously (wire `rejected` response) instead of failing minutes
 * later inside a runner.  Checks are per-kind allowlists — unknown or
 * duplicate parameters are rejections, not warnings — plus range
 * checks, and for analysis jobs the actual circuit resolution: inline
 * text is parsed with stab::tryParseCircuit and vetted by the lint
 * structural passes, builder names are resolved against
 * dse::builderRegistry().
 *
 * Validation is pure on the spec (no service state), so the same
 * predicate serves the in-process API, the wire server, and tests.
 */

#pragma once

#include <string>

#include "service/job.hh"

namespace hetarch {
namespace service {

/** Outcome of admission validation. */
struct Validation
{
    bool ok = true;
    std::string error;

    static Validation pass() { return {}; }
    static Validation fail(std::string why)
    {
        Validation v;
        v.ok = false;
        v.error = std::move(why);
        return v;
    }
};

/** Check @p spec against its kind's parameter contract. */
Validation validateJob(const JobSpec& spec);

} // namespace service
} // namespace hetarch
