#include "service/scheduler.hh"

namespace hetarch {
namespace service {

namespace {

std::int64_t
negate(std::int64_t priority)
{
    // Flip the sign without overflowing on INT64_MIN.
    return -1 - priority;
}

} // namespace

bool
JobQueue::push(JobId id, std::int64_t priority)
{
    if (order_.size() >= capacity_)
        return false;
    order_.emplace(negate(priority), id);
    priorityOf_.emplace(id, priority);
    return true;
}

JobId
JobQueue::pop()
{
    if (order_.empty())
        return kInvalidJobId;
    const auto it = order_.begin();
    const JobId id = it->second;
    order_.erase(it);
    priorityOf_.erase(id);
    return id;
}

std::vector<JobId>
JobQueue::popBatch(std::size_t max)
{
    std::vector<JobId> batch;
    while (batch.size() < max && !order_.empty())
        batch.push_back(pop());
    return batch;
}

bool
JobQueue::remove(JobId id)
{
    const auto it = priorityOf_.find(id);
    if (it == priorityOf_.end())
        return false;
    order_.erase(Key{negate(it->second), id});
    priorityOf_.erase(it);
    return true;
}

} // namespace service
} // namespace hetarch
