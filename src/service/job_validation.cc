#include "service/job_validation.hh"

#include <cmath>
#include <set>
#include <sstream>

#include "dse/builder_registry.hh"
#include "lint/lint.hh"
#include "stab/circuit_io.hh"

namespace hetarch {
namespace service {

namespace {

// Range of one numeric parameter.  Integer parameters additionally
// require an integral value; flags require exactly 0 or 1.
struct ParamRule
{
    const char* key;
    bool required = false;
    bool integer = false;
    double min = 0.0;
    double max = 0.0;
};

Validation
checkNumber(const JobSpec& spec, const ParamRule& rule)
{
    const ParamValue* p = spec.find(rule.key);
    if (p == nullptr) {
        if (rule.required) {
            return Validation::fail(std::string("missing required param '") +
                                    rule.key + "'");
        }
        return Validation::pass();
    }
    if (p->kind != ParamValue::Kind::Number) {
        return Validation::fail(std::string("param '") + rule.key +
                                "' must be a number");
    }
    const double v = p->number;
    if (!(v >= rule.min && v <= rule.max)) {
        std::ostringstream os;
        os << "param '" << rule.key << "' out of range [" << rule.min
           << ", " << rule.max << "]: " << v;
        return Validation::fail(os.str());
    }
    if (rule.integer && std::floor(v) != v) {
        return Validation::fail(std::string("param '") + rule.key +
                                "' must be an integer");
    }
    return Validation::pass();
}

// Reject duplicate keys and anything outside the allowlist, then run
// the numeric rules.  Text-valued params are listed in @p textKeys.
Validation
checkParams(const JobSpec& spec, const std::vector<ParamRule>& rules,
            const std::vector<const char*>& textKeys = {})
{
    std::set<std::string> seen;
    for (const auto& [key, value] : spec.params) {
        if (!seen.insert(key).second)
            return Validation::fail("duplicate param '" + key + "'");
        bool known = false;
        for (const auto& rule : rules)
            known = known || key == rule.key;
        for (const char* text_key : textKeys)
            known = known || key == text_key;
        if (!known) {
            return Validation::fail("unknown param '" + key + "' for kind " +
                                    jobKindName(spec.kind));
        }
    }
    for (const auto& rule : rules) {
        Validation v = checkNumber(spec, rule);
        if (!v.ok)
            return v;
    }
    for (const char* text_key : textKeys) {
        const ParamValue* p = spec.find(text_key);
        if (p != nullptr && p->kind != ParamValue::Kind::Text) {
            return Validation::fail(std::string("param '") + text_key +
                                    "' must be a string");
        }
    }
    return Validation::pass();
}

Validation
checkDecoderName(const JobSpec& spec)
{
    const ParamValue* p = spec.find("decoder");
    if (p == nullptr)
        return Validation::pass();
    if (p->text != "union-find" && p->text != "greedy") {
        return Validation::fail("unknown decoder '" + p->text +
                                "' (expected union-find or greedy)");
    }
    return Validation::pass();
}

Validation
checkOddDistance(const JobSpec& spec)
{
    const double d = spec.numberOr("distance", 3);
    if (static_cast<std::uint64_t>(d) % 2 == 0)
        return Validation::fail("param 'distance' must be odd");
    return Validation::pass();
}

const std::vector<ParamRule>&
memoryRules()
{
    static const std::vector<ParamRule> rules = {
        {"distance", true, true, 3, 25},
        {"rounds", true, true, 1, 100000},
        {"shots", true, true, 1, 100000000},
        {"p1", false, false, 0.0, 1.0},
        {"p2", false, false, 0.0, 1.0},
    };
    return rules;
}

Validation
validateMemory(const JobSpec& spec)
{
    Validation v = checkParams(spec, memoryRules(), {"decoder"});
    if (!v.ok)
        return v;
    v = checkOddDistance(spec);
    if (!v.ok)
        return v;
    return checkDecoderName(spec);
}

Validation
validateStream(const JobSpec& spec)
{
    std::vector<ParamRule> rules = memoryRules();
    rules.push_back({"window", false, true, 0, 100000});
    rules.push_back({"commit", false, true, 0, 100000});
    rules.push_back({"queue", false, true, 1, 4096});
    rules.push_back({"chunk", false, true, 0, 1000000});
    Validation v = checkParams(spec, rules, {"decoder"});
    if (!v.ok)
        return v;
    v = checkOddDistance(spec);
    if (!v.ok)
        return v;
    v = checkDecoderName(spec);
    if (!v.ok)
        return v;
    const double window = spec.numberOr("window", 0);
    const double commit = spec.numberOr("commit", 0);
    if (commit > window)
        return Validation::fail("param 'commit' must not exceed 'window'");
    const ParamValue* decoder = spec.find("decoder");
    if (window > 0 && decoder != nullptr && decoder->text != "union-find") {
        return Validation::fail(
            "windowed streaming requires the union-find decoder");
    }
    return Validation::pass();
}

Validation
validateSweepPoint(const JobSpec& spec)
{
    static const std::vector<ParamRule> rules = {
        {"distance", true, true, 3, 25},
        {"rounds", true, true, 1, 100000},
        {"shots", true, true, 1, 100000000},
        {"p1", false, false, 0.0, 1.0},
        {"p2", false, false, 0.0, 1.0},
    };
    Validation v = checkParams(spec, rules);
    if (!v.ok)
        return v;
    return checkOddDistance(spec);
}

Validation
validateDistill(const JobSpec& spec)
{
    static const std::vector<ParamRule> rules = {
        {"trajectories", true, true, 1, 100000},
        {"horizon_us", true, false, 1e-3, 1e9},
        {"heterogeneous", false, true, 0, 1},
        {"target_fidelity", false, false, 0.5, 1.0},
    };
    return checkParams(spec, rules);
}

Validation
validateAnalysis(const JobSpec& spec)
{
    static const std::vector<ParamRule> rules = {
        {"distance", false, true, 0, 1},
        {"timing", false, true, 0, 1},
        {"flow", false, true, 0, 1},
    };
    Validation v = checkParams(spec, rules, {"circuit", "builder"});
    if (!v.ok)
        return v;

    const ParamValue* text = spec.find("circuit");
    const ParamValue* builder = spec.find("builder");
    if ((text == nullptr) == (builder == nullptr)) {
        return Validation::fail(
            "analysis jobs take exactly one of 'circuit' or 'builder'");
    }
    if (builder != nullptr) {
        if (dse::findBuilder(builder->text) == nullptr)
            return Validation::fail("unknown builder '" + builder->text + "'");
        return Validation::pass();
    }

    // Inline circuits are vetted up front: the text must parse, and the
    // cheap structural passes must come back clean — a circuit that
    // cannot survive them would only fail later inside the runner.
    stab::Circuit circuit;
    std::string parse_error;
    if (!stab::tryParseCircuit(text->text, circuit, parse_error))
        return Validation::fail("circuit does not parse: " + parse_error);
    lint::LintReport report;
    lint::passStructural(circuit, report);
    lint::passRecordRefs(circuit, report);
    lint::passProbability(circuit, report);
    if (!report.clean())
        return Validation::fail("circuit fails lint: " + report.toString());
    return Validation::pass();
}

} // namespace

Validation
validateJob(const JobSpec& spec)
{
    if (spec.name.empty())
        return Validation::fail("job name must not be empty");
    switch (spec.kind) {
    case JobKind::Memory:
        return validateMemory(spec);
    case JobKind::Stream:
        return validateStream(spec);
    case JobKind::SweepPoint:
        return validateSweepPoint(spec);
    case JobKind::Distill:
        return validateDistill(spec);
    case JobKind::Analysis:
        return validateAnalysis(spec);
    }
    return Validation::fail("unknown job kind");
}

} // namespace service
} // namespace hetarch
