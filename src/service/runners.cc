/**
 * @file
 * Builtin job runners: the bridge from validated JobSpecs to the
 * repo's experiment entry points.
 *
 * Every runner derives all randomness from `Rng(spec.seed)` and emits
 * only deterministic fields into the JobResult, so a job's result is
 * a pure function of its spec — the property the service determinism
 * tests compare against direct API calls.  Runners poll
 * JobContext::cancelled() at phase boundaries; work between
 * boundaries always completes (cancellation is cooperative, never
 * preemptive).
 */

#include <cstdint>

#include "core/rng.hh"
#include "distill/module_sim.hh"
#include "dse/builder_registry.hh"
#include "lint/dataflow.hh"
#include "lint/faults.hh"
#include "lint/lint.hh"
#include "lint/schedule.hh"
#include "lint/timing_model.hh"
#include "qec/decoder_cache.hh"
#include "qec/memory_experiment.hh"
#include "qec/noise_model.hh"
#include "qec/stream_experiment.hh"
#include "qec/surface_circuit.hh"
#include "service/job_service.hh"
#include "stab/circuit_io.hh"

namespace hetarch {
namespace service {

namespace {

std::size_t
sizeParam(const JobSpec& spec, const char* key, std::size_t fallback)
{
    return static_cast<std::size_t>(
        spec.numberOr(key, static_cast<double>(fallback)));
}

qec::CircuitNoise
noiseFromSpec(const JobSpec& spec)
{
    qec::CircuitNoise noise;
    noise.p1 = spec.numberOr("p1", noise.p1);
    noise.p2 = spec.numberOr("p2", noise.p2);
    return noise;
}

qec::DecoderKind
decoderFromSpec(const JobSpec& spec)
{
    const ParamValue* p = spec.find("decoder");
    if (p != nullptr && p->text == "greedy")
        return qec::DecoderKind::GreedyDem;
    return qec::DecoderKind::UnionFind;
}

JobResult
runMemory(const JobSpec& spec, JobContext& ctx)
{
    const std::size_t distance = sizeParam(spec, "distance", 3);
    const std::size_t rounds = sizeParam(spec, "rounds", 1);
    const std::size_t shots = sizeParam(spec, "shots", 1);
    const stab::Circuit circuit =
        qec::surfaceMemoryZ(distance, rounds, noiseFromSpec(spec));
    JobResult result;
    if (ctx.cancelled())
        return result;
    Rng rng(spec.seed);
    const qec::MemoryResult memory = qec::runMemoryExperiment(
        circuit, shots, rounds, decoderFromSpec(spec), rng);
    result.addU64("shots", memory.shots);
    result.addU64("failures", memory.failures);
    result.addU64("rounds", memory.rounds);
    result.addReal("per_shot", memory.perShot());
    result.addReal("per_round", memory.perRound());
    return result;
}

JobResult
runStream(const JobSpec& spec, JobContext& ctx)
{
    const std::size_t distance = sizeParam(spec, "distance", 3);
    const std::size_t rounds = sizeParam(spec, "rounds", 1);
    const std::size_t shots = sizeParam(spec, "shots", 1);
    qec::StreamConfig config;
    config.windowRounds = sizeParam(spec, "window", 0);
    config.commitRounds = sizeParam(spec, "commit", 0);
    config.queueBlocks = sizeParam(spec, "queue", config.queueBlocks);
    config.chunkShots = sizeParam(spec, "chunk", 0);
    const stab::Circuit circuit =
        qec::surfaceMemoryZ(distance, rounds, noiseFromSpec(spec));
    JobResult result;
    if (ctx.cancelled())
        return result;
    Rng rng(spec.seed);
    const qec::StreamingResult stream = qec::runStreamingMemoryExperiment(
        circuit, shots, rounds, decoderFromSpec(spec), rng, config);
    result.addU64("shots", stream.memory.shots);
    result.addU64("failures", stream.memory.failures);
    result.addU64("rounds", stream.memory.rounds);
    result.addU64("window", stream.windowRounds);
    result.addU64("commit", stream.commitRounds);
    result.addU64("peak_rounds", stream.peakStoredRounds);
    result.addU64("blocks", stream.blocks);
    result.addU64("windows", stream.windows);
    result.addU64("lane_decodes", stream.laneDecodes);
    result.addU64("committed_rounds", stream.committedRounds);
    result.addU64("carry_defects", stream.carryDefects);
    result.addU64("trivial_shots", stream.trivialShots);
    result.addReal("per_shot", stream.memory.perShot());
    return result;
}

JobResult
runSweepPoint(const JobSpec& spec, JobContext& ctx)
{
    const std::size_t distance = sizeParam(spec, "distance", 3);
    const std::size_t rounds = sizeParam(spec, "rounds", 1);
    const std::size_t shots = sizeParam(spec, "shots", 1);
    JobResult result;
    if (ctx.cancelled())
        return result;
    const double per_round = qec::surfaceLogicalErrorPerRound(
        distance, rounds, noiseFromSpec(spec), shots, spec.seed);
    result.addU64("distance", distance);
    result.addU64("rounds", rounds);
    result.addU64("shots", shots);
    result.addReal("per_round", per_round);
    return result;
}

JobResult
runDistill(const JobSpec& spec, JobContext& ctx)
{
    distill::DistillConfig config;
    config.seed = spec.seed;
    config.heterogeneous = spec.numberOr("heterogeneous", 1) != 0;
    config.targetFidelity =
        spec.numberOr("target_fidelity", config.targetFidelity);
    const double horizon_ns = spec.numberOr("horizon_us", 1) * 1000.0;
    const std::size_t trajectories = sizeParam(spec, "trajectories", 1);
    JobResult result;
    if (ctx.cancelled())
        return result;
    const distill::DistillEnsemble ensemble =
        distill::simulateDistillationEnsemble(config, horizon_ns,
                                              trajectories);
    result.addU64("trajectories", ensemble.runs.size());
    result.addU64("distilled", ensemble.totalDistilled());
    result.addU64("attempts", ensemble.totalAttempts());
    result.addReal("rate_per_ms", ensemble.meanDistilledRatePerMs());
    return result;
}

JobResult
runAnalysis(const JobSpec& spec, JobContext& ctx)
{
    stab::Circuit circuit;
    if (const ParamValue* builder = spec.find("builder")) {
        circuit = dse::findBuilder(builder->text)->make();
    } else {
        // Validation already proved the text parses; parse again here
        // because specs carry text, not IR.
        circuit = stab::parseCircuit(spec.find("circuit")->text);
    }

    JobResult result;
    if (ctx.cancelled())
        return result;
    const lint::LintReport report = lint::lintCircuit(circuit);
    result.addU64("errors", report.errorCount());
    result.addU64("warnings", report.warningCount());

    if (spec.numberOr("distance", 0) != 0 && report.clean()) {
        if (ctx.cancelled())
            return result;
        const auto faults =
            qec::DecoderCache::instance().faultAnalysis(circuit, {});
        const std::size_t min_distance = faults->minDistance();
        if (min_distance == lint::kInfiniteDistance)
            result.addText("min_distance", "unbounded");
        else
            result.addU64("min_distance", min_distance);
        result.addU64("undetectable", faults->undetectableMechanisms.size());
    }

    if (spec.numberOr("timing", 0) != 0) {
        if (ctx.cancelled())
            return result;
        const auto timing =
            lint::sched::TimingModel::unit(circuit.numQubits());
        const auto sched = lint::sched::ScheduleCache::instance().analysis(
            circuit, timing, {});
        result.addReal("critical_path_ns", sched->criticalPathNs);
        result.addU64("hazard_errors", sched->hazardErrors());
    }

    if (spec.numberOr("flow", 0) != 0) {
        if (ctx.cancelled())
            return result;
        const auto timing =
            lint::sched::TimingModel::unit(circuit.numQubits());
        lint::flow::FlowOptions options;
        // The certified budget needs the fault structure; only compose
        // it when the caller asked for distance analysis and the
        // circuit survived lint (fault analysis asserts determinism).
        std::shared_ptr<const lint::FaultAnalysis> faults;
        if (spec.numberOr("distance", 0) != 0 && report.clean()) {
            faults = qec::DecoderCache::instance().faultAnalysis(circuit, {});
            options.faults = faults.get();
            options.gateBudget = true;
        }
        const auto flow = lint::flow::FlowCache::instance().analysis(
            circuit, timing, options);
        result.addU64("flow_swaps", flow->swapCount);
        result.addReal("flow_movement_ns", flow->movementNs);
        result.addU64("flow_peak_storage", flow->peakStorageOccupancy);
        result.addU64("flow_hazard_errors", flow->hazardErrors());
        if (options.gateBudget)
            result.addReal("flow_budget", flow->maxBudget());
    }
    return result;
}

} // namespace

JobRunner
builtinRunner(JobKind kind)
{
    switch (kind) {
    case JobKind::Memory:
        return runMemory;
    case JobKind::Stream:
        return runStream;
    case JobKind::SweepPoint:
        return runSweepPoint;
    case JobKind::Distill:
        return runDistill;
    case JobKind::Analysis:
        return runAnalysis;
    }
    return nullptr;
}

} // namespace service
} // namespace hetarch
