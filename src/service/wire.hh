/**
 * @file
 * `hetarch-job-v1` — JSON-lines wire protocol of the job service.
 *
 * One request or response per line, fixed field order, strict
 * grammar: like the hetarch-obs-v1 reader, the parser accepts exactly
 * what the writer emits — unknown fields, reordered fields, duplicate
 * keys, bad escapes, or trailing bytes are all errors, reported with
 * a byte offset.  Unlike the obs reader the parser *returns* its
 * diagnostic instead of exiting: the daemon answers a malformed line
 * with an `error` response and keeps serving.
 *
 * Requests (client -> server):
 *   {"schema":"hetarch-job-v1","type":"submit","name":N,"kind":K,
 *    "priority":P,"seed":S,"params":{...}}
 *   {"schema":"hetarch-job-v1","type":"status","id":I}
 *   {"schema":"hetarch-job-v1","type":"cancel","id":I}
 *   {"schema":"hetarch-job-v1","type":"wait"}
 *   {"schema":"hetarch-job-v1","type":"shutdown"}
 *
 * Responses (server -> client):
 *   submitted {id,name,state}        job admitted (state "queued")
 *   rejected  {name,error}           admission refused
 *   status    {id,name,kind,state,error,result,metrics}
 *   cancelled {id,ok}
 *   idle      {jobs}                 wait finished; total job count
 *   error     {message}              malformed or unserviceable request
 *   bye       {submitted,completed,failed,cancelled,rejected}
 *
 * Numbers: u64 and i64 print in decimal; reals print in shortest
 * round-trip form and always carry a '.', 'e', or "inf"/"nan" marker
 * so the reader can reconstruct the U64-vs-Real kind of a result
 * field from the token shape alone.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "service/job.hh"

namespace hetarch {
namespace service {

inline constexpr const char* kJobSchema = "hetarch-job-v1";

/** Request kinds, in wire-name order. */
enum class RequestType : std::uint8_t
{
    Submit,
    Status,
    Cancel,
    Wait,
    Shutdown,
};

/** One client request. */
struct Request
{
    RequestType type = RequestType::Submit;
    /** Submit payload. */
    JobSpec job;
    /** Status / Cancel target. */
    JobId id = kInvalidJobId;
};

/** Response kinds, in wire-name order. */
enum class ResponseType : std::uint8_t
{
    Submitted,
    Rejected,
    Status,
    Cancelled,
    Idle,
    Error,
    Bye,
};

/** One server response. */
struct Response
{
    ResponseType type = ResponseType::Error;

    JobId id = kInvalidJobId;  ///< Submitted / Status / Cancelled
    std::string name;          ///< Submitted / Status / Rejected
    JobKind kind = JobKind::Memory; ///< Status
    JobState state = JobState::Queued; ///< Submitted / Status
    std::string message;       ///< Rejected / Error / Status failure
    bool ok = false;           ///< Cancelled
    bool hasResult = false;    ///< Status: result is non-null
    JobResult result;          ///< Status (Done jobs)
    bool hasMetrics = false;   ///< Status: metrics is non-null
    std::vector<std::pair<std::string, std::uint64_t>> metrics;
    std::uint64_t jobs = 0;    ///< Idle
    // Bye tallies.
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t rejected = 0;
};

/** Serialize (no trailing newline). */
std::string writeRequestLine(const Request& request);
std::string writeResponseLine(const Response& response);

/**
 * Strict parse of one line.  On failure @p error describes the first
 * violation ("offset 12: expected '\"'") and @p out is unspecified.
 */
bool parseRequestLine(const std::string& line, Request& out,
                      std::string& error);
bool parseResponseLine(const std::string& line, Response& out,
                       std::string& error);

/** Status response for one job snapshot. */
Response makeStatusResponse(const JobStatus& status);

} // namespace service
} // namespace hetarch
