#include "service/job.hh"

namespace hetarch {
namespace service {

const char*
jobKindName(JobKind kind)
{
    switch (kind) {
    case JobKind::Memory:
        return "memory";
    case JobKind::Stream:
        return "stream";
    case JobKind::SweepPoint:
        return "sweep-point";
    case JobKind::Distill:
        return "distill";
    case JobKind::Analysis:
        return "analysis";
    }
    return "?";
}

bool
parseJobKind(const std::string& name, JobKind& out)
{
    static constexpr JobKind kinds[] = {
        JobKind::Memory,   JobKind::Stream,   JobKind::SweepPoint,
        JobKind::Distill,  JobKind::Analysis,
    };
    for (JobKind k : kinds) {
        if (name == jobKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

const char*
jobStateName(JobState state)
{
    switch (state) {
    case JobState::Queued:
        return "queued";
    case JobState::Running:
        return "running";
    case JobState::Done:
        return "done";
    case JobState::Failed:
        return "failed";
    case JobState::Cancelled:
        return "cancelled";
    }
    return "?";
}

bool
parseJobState(const std::string& name, JobState& out)
{
    static constexpr JobState states[] = {
        JobState::Queued, JobState::Running,   JobState::Done,
        JobState::Failed, JobState::Cancelled,
    };
    for (JobState s : states) {
        if (name == jobStateName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

bool
isTerminalState(JobState state)
{
    return state == JobState::Done || state == JobState::Failed ||
           state == JobState::Cancelled;
}

const ParamValue*
JobSpec::find(const std::string& key) const
{
    for (const auto& [k, v] : params)
        if (k == key)
            return &v;
    return nullptr;
}

double
JobSpec::numberOr(const std::string& key, double fallback) const
{
    const ParamValue* p = find(key);
    if (p == nullptr || p->kind != ParamValue::Kind::Number)
        return fallback;
    return p->number;
}

void
JobResult::addU64(std::string key, std::uint64_t v)
{
    ResultValue value;
    value.kind = ResultValue::Kind::U64;
    value.u64 = v;
    fields.emplace_back(std::move(key), std::move(value));
}

void
JobResult::addReal(std::string key, double v)
{
    ResultValue value;
    value.kind = ResultValue::Kind::Real;
    value.real = v;
    fields.emplace_back(std::move(key), std::move(value));
}

void
JobResult::addText(std::string key, std::string v)
{
    ResultValue value;
    value.kind = ResultValue::Kind::Text;
    value.text = std::move(v);
    fields.emplace_back(std::move(key), std::move(value));
}

const ResultValue*
JobResult::find(const std::string& key) const
{
    for (const auto& [k, v] : fields)
        if (k == key)
            return &v;
    return nullptr;
}

} // namespace service
} // namespace hetarch
