/**
 * @file
 * Admission-controlled priority/FIFO queue for the job service.
 *
 * Scheduling order is strict priority (higher first) with FIFO
 * tie-break by job id — ids are assigned in submission order, so two
 * jobs at the same priority run in the order they arrived.  The queue
 * holds ids only; the service owns the job records.
 *
 * Admission control is a hard capacity on *queued* jobs: push()
 * refuses once the bound is reached and the service surfaces that as
 * a `rejected` outcome instead of buffering without limit.
 *
 * Not thread-safe — JobService serializes access under its own mutex.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "service/job.hh"

namespace hetarch {
namespace service {

class JobQueue
{
  public:
    explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

    /** Admit @p id at @p priority; false when the queue is full. */
    bool push(JobId id, std::int64_t priority);

    /** Highest-priority id (FIFO within priority), or kInvalidJobId. */
    JobId pop();

    /** Up to @p max ids in scheduling order. */
    std::vector<JobId> popBatch(std::size_t max);

    /** Withdraw a queued id (cancellation); false when absent. */
    bool remove(JobId id);

    std::size_t size() const { return order_.size(); }
    bool empty() const { return order_.empty(); }
    std::size_t capacity() const { return capacity_; }

  private:
    // Key sorts ascending, so store negated priority: the set's
    // begin() is then (highest priority, lowest id).
    using Key = std::pair<std::int64_t, JobId>;

    std::size_t capacity_;
    std::set<Key> order_;
    std::unordered_map<JobId, std::int64_t> priorityOf_;
};

} // namespace service
} // namespace hetarch
