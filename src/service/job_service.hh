/**
 * @file
 * In-process experiment job service (`hetarch::service::JobService`).
 *
 * The service turns the repo's one-shot experiment entry points into
 * schedulable jobs: clients submit JobSpecs, get back ids, and the
 * service validates at admission, queues by priority (FIFO within a
 * priority, hard queue capacity), runs batches of up to
 * `maxConcurrent` jobs over the exec pool, and retires each job into
 * a terminal state (`done` / `failed` / `cancelled`) that status() and
 * wait() observe.
 *
 * Determinism contract: a job's result depends only on its spec —
 * every runner seeds its own `Rng(spec.seed)` and the experiment
 * kernels underneath are bit-identical at any worker count — so
 * results are independent of batch composition, queue order, worker
 * count, and whichever jobs happen to share the process.  The service
 * determinism tests pin exactly this: N concurrent jobs equal the
 * same specs run sequentially against the direct APIs.
 *
 * Two dispatch modes:
 *   - autoStart (default): a dispatcher thread wakes on submit and
 *     runs batches until shutdown.  Jobs in one batch execute via
 *     exec::parallelFor, so a batch of one parallelizes *inside* the
 *     experiment while a full batch parallelizes *across* jobs (the
 *     pool serializes nested regions automatically).
 *   - manual (autoStart = false): nothing runs until drain(), which
 *     dispatches on the calling thread until the queue is empty.
 *     Tests and benchmarks use this for deterministic batch shapes.
 *
 * Cancellation: a queued job cancels immediately; a running job gets
 * a cooperative flag that runners poll at phase boundaries
 * (JobContext::cancelled()) — the job retires as `cancelled` and its
 * partial result is discarded.
 *
 * Observability (`service.jobs.*` counters, all event-driven and
 * therefore thread-invariant): submitted (admitted only), rejected
 * (validation or queue-full), completed, failed, cancelled.  With
 * Config::captureMetrics the service additionally snapshots the obs
 * registry around each runner and attaches the counter delta to the
 * job's status — advisory, see JobStatus::metricsDelta.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/job.hh"
#include "service/scheduler.hh"

namespace hetarch {
namespace service {

/** Per-job view a runner gets while executing. */
class JobContext
{
  public:
    JobContext(JobId id, const std::atomic<bool>& cancel_flag)
        : id_(id), cancelFlag_(cancel_flag)
    {
    }

    JobId id() const { return id_; }

    /** True once cancel() was requested; runners poll at phase bounds. */
    bool cancelled() const
    {
        return cancelFlag_.load(std::memory_order_relaxed);
    }

  private:
    JobId id_;
    const std::atomic<bool>& cancelFlag_;
};

/**
 * Executes one job kind.  Runs with no service lock held; must derive
 * all randomness from spec.seed and may throw (-> `failed`).
 */
using JobRunner =
    std::function<JobResult(const JobSpec& spec, JobContext& ctx)>;

/** The builtin runner for @p kind (memory/stream/sweep/distill/analysis). */
JobRunner builtinRunner(JobKind kind);

/** Service configuration, fixed at construction. */
struct ServiceConfig
{
    /** Queued-job capacity (admission control). */
    std::size_t maxQueued = 256;
    /** Jobs dispatched per batch. */
    std::size_t maxConcurrent = 4;
    /** Start the dispatcher thread immediately. */
    bool autoStart = true;
    /** Attach advisory per-job obs counter deltas to statuses. */
    bool captureMetrics = false;
};

/** What submit() returns: an id, or a rejection diagnostic. */
struct SubmitOutcome
{
    JobId id = kInvalidJobId;
    std::string error;

    bool accepted() const { return id != kInvalidJobId; }
};

class JobService
{
  public:
    explicit JobService(ServiceConfig config = {});

    /** Cancels everything still queued, waits for running jobs. */
    ~JobService();

    JobService(const JobService&) = delete;
    JobService& operator=(const JobService&) = delete;

    /**
     * Validate and enqueue @p spec.  Rejections (validation failure,
     * queue full, shutting down) carry a diagnostic and never consume
     * an id, so accepted ids are dense in submission order: 1, 2, ...
     */
    SubmitOutcome submit(JobSpec spec);

    /**
     * Cancel a job.  Queued: withdrawn and retired immediately.
     * Running: cooperative flag set; the job retires as `cancelled`
     * when its runner next yields.  Returns false for terminal or
     * unknown ids.
     */
    bool cancel(JobId id);

    /** Snapshot one job; false when @p id was never assigned. */
    bool status(JobId id, JobStatus& out) const;

    /** Snapshot every job, ascending by id. */
    std::vector<JobStatus> statusAll() const;

    /** Block until @p id is terminal, then return its snapshot. */
    JobStatus wait(JobId id);

    /** Block until no job is queued or running. */
    void waitIdle();

    /** Start the dispatcher thread (no-op when already started). */
    void start();

    /**
     * Manual dispatch: run queued batches on the calling thread until
     * the queue is empty.  Only valid while the dispatcher thread is
     * not running.
     */
    void drain();

    /**
     * Replace the runner for @p kind on this instance (tests use this
     * to inject blocking or recording runners).  Call before any job
     * of that kind is dispatched.
     */
    void setRunner(JobKind kind, JobRunner runner);

    const ServiceConfig& config() const { return config_; }

    /** Queued jobs right now (admission headroom probe). */
    std::size_t queuedCount() const;

  private:
    struct Job
    {
        JobId id = kInvalidJobId;
        JobSpec spec;
        JobState state = JobState::Queued;
        std::string error;
        JobResult result;
        std::vector<std::pair<std::string, std::uint64_t>> metricsDelta;
        std::atomic<bool> cancelRequested{false};
    };

    void dispatcherLoop();
    /** Pop one batch, run it, retire every job in it.  @p lk held. */
    void runBatch(std::unique_lock<std::mutex>& lk);
    void runOne(Job& job);
    JobStatus snapshot(const Job& job) const;
    bool idleLocked() const;

    ServiceConfig config_;
    JobRunner runners_[5];

    mutable std::mutex mu_;
    std::condition_variable cvWork_;  ///< dispatcher wake-up
    std::condition_variable cvState_; ///< waiters on job transitions
    std::map<JobId, std::unique_ptr<Job>> jobs_;
    JobQueue queue_;
    JobId nextId_ = 1;
    std::size_t running_ = 0;
    bool stopping_ = false;
    bool dispatching_ = false; ///< a drain() batch is in flight
    std::thread dispatcher_;
};

} // namespace service
} // namespace hetarch
