#include "service/wire.hh"

#include <cctype>
#include <charconv>
#include <sstream>
#include <string>

#include "core/strict_json.hh"

namespace hetarch {
namespace service {

namespace {

// --- writer -----------------------------------------------------------

using core::json::writeString;

/**
 * Shortest round-trip form, always carrying a real marker ('.', 'e',
 * "inf", "nan") so the reader can tell reals from u64 counts by token
 * shape alone.
 */
void
writeReal(std::ostream& os, double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    std::string s(buf, res.ptr);
    if (s.find_first_of(".eEn") == std::string::npos)
        s += ".0";
    os << s;
}

void
writeResult(std::ostream& os, const JobResult& result)
{
    os << '{';
    bool first = true;
    for (const auto& [key, value] : result.fields) {
        if (!first)
            os << ',';
        first = false;
        writeString(os, key);
        os << ':';
        switch (value.kind) {
        case ResultValue::Kind::U64:
            os << value.u64;
            break;
        case ResultValue::Kind::Real:
            writeReal(os, value.real);
            break;
        case ResultValue::Kind::Text:
            writeString(os, value.text);
            break;
        }
    }
    os << '}';
}

void
writeHead(std::ostream& os, const char* type)
{
    os << "{\"schema\":\"" << kJobSchema << "\",\"type\":\"" << type
       << '"';
}

const char*
requestTypeName(RequestType type)
{
    switch (type) {
    case RequestType::Submit:
        return "submit";
    case RequestType::Status:
        return "status";
    case RequestType::Cancel:
        return "cancel";
    case RequestType::Wait:
        return "wait";
    case RequestType::Shutdown:
        return "shutdown";
    }
    return "?";
}

const char*
responseTypeName(ResponseType type)
{
    switch (type) {
    case ResponseType::Submitted:
        return "submitted";
    case ResponseType::Rejected:
        return "rejected";
    case ResponseType::Status:
        return "status";
    case ResponseType::Cancelled:
        return "cancelled";
    case ResponseType::Idle:
        return "idle";
    case ResponseType::Error:
        return "error";
    case ResponseType::Bye:
        return "bye";
    }
    return "?";
}

// --- strict scanner ---------------------------------------------------

/**
 * The shared strict scanner plus the wire dialect: number tokens are
 * classified U64-vs-Real by shape, and job ids must be positive.
 */
class Scanner : public core::json::Scanner
{
  public:
    explicit Scanner(const std::string& text)
        : core::json::Scanner(text)
    {}

    /**
     * A JSON number token, classified by shape: digits only is U64,
     * anything with a sign, '.', or exponent is Real.
     */
    ResultValue parseNumberValue()
    {
        skipWs();
        const std::size_t begin = pos;
        while (pos < src.size() &&
               (std::isalnum(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '.' || src[pos] == '+' || src[pos] == '-'))
            ++pos;
        if (pos == begin)
            fail("expected a number");
        const std::string token = src.substr(begin, pos - begin);
        ResultValue value;
        if (token.find_first_not_of("0123456789") == std::string::npos) {
            pos = begin;
            value.kind = ResultValue::Kind::U64;
            value.u64 = parseU64();
            return value;
        }
        value.kind = ResultValue::Kind::Real;
        const char* end = token.c_str() + token.size();
        const auto res = std::from_chars(token.c_str(), end, value.real);
        if (res.ec != std::errc{} || res.ptr != end) {
            pos = begin;
            fail("malformed number '" + token + "'");
        }
        return value;
    }

    double parseReal()
    {
        const ResultValue v = parseNumberValue();
        return v.kind == ResultValue::Kind::U64
                   ? static_cast<double>(v.u64)
                   : v.real;
    }

    JobId parseJobId()
    {
        const std::uint64_t id = parseU64();
        if (id == kInvalidJobId)
            fail("job id must be positive");
        return id;
    }
};

/** Format a scan failure as the diagnostic parse*Line() returns. */
std::string
scanDiagnostic(const core::json::ScanError& e)
{
    return "offset " + std::to_string(e.offset) + ": " + e.reason;
}

// --- request / response payloads --------------------------------------

void
parseParams(Scanner& sc, JobSpec& spec)
{
    sc.expect('{');
    if (sc.consume('}'))
        return;
    do {
        const std::string key = sc.parseString();
        if (spec.find(key) != nullptr)
            sc.fail("duplicate param \"" + key + "\"");
        sc.expect(':');
        if (sc.peek() == '"') {
            spec.add(key, ParamValue::str(sc.parseString()));
        } else {
            spec.add(key, ParamValue::num(sc.parseReal()));
        }
    } while (sc.consume(','));
    sc.expect('}');
}

void
parseResult(Scanner& sc, JobResult& result)
{
    sc.expect('{');
    if (sc.consume('}'))
        return;
    do {
        const std::string key = sc.parseString();
        if (result.find(key) != nullptr)
            sc.fail("duplicate result field \"" + key + "\"");
        sc.expect(':');
        if (sc.peek() == '"') {
            result.addText(key, sc.parseString());
        } else {
            ResultValue value = sc.parseNumberValue();
            result.fields.emplace_back(key, std::move(value));
        }
    } while (sc.consume(','));
    sc.expect('}');
}

void
parseMetrics(Scanner& sc,
             std::vector<std::pair<std::string, std::uint64_t>>& metrics)
{
    sc.expect('{');
    if (sc.consume('}'))
        return;
    do {
        const std::string key = sc.parseString();
        for (const auto& [name, count] : metrics) {
            (void) count;
            if (name == key)
                sc.fail("duplicate metric \"" + key + "\"");
        }
        sc.expect(':');
        metrics.emplace_back(key, sc.parseU64());
    } while (sc.consume(','));
    sc.expect('}');
}

JobKind
parseKindName(Scanner& sc)
{
    const std::string name = sc.parseString();
    JobKind kind;
    if (!parseJobKind(name, kind))
        sc.fail("unknown job kind \"" + name + "\"");
    return kind;
}

JobState
parseStateName(Scanner& sc)
{
    const std::string name = sc.parseString();
    JobState state;
    if (!parseJobState(name, state))
        sc.fail("unknown job state \"" + name + "\"");
    return state;
}

} // namespace

std::string
writeRequestLine(const Request& request)
{
    std::ostringstream os;
    writeHead(os, requestTypeName(request.type));
    switch (request.type) {
    case RequestType::Submit: {
        os << ",\"name\":";
        writeString(os, request.job.name);
        os << ",\"kind\":\"" << jobKindName(request.job.kind) << '"';
        os << ",\"priority\":" << request.job.priority;
        os << ",\"seed\":" << request.job.seed;
        os << ",\"params\":{";
        bool first = true;
        for (const auto& [key, value] : request.job.params) {
            if (!first)
                os << ',';
            first = false;
            writeString(os, key);
            os << ':';
            if (value.kind == ParamValue::Kind::Text)
                writeString(os, value.text);
            else
                writeReal(os, value.number);
        }
        os << '}';
        break;
    }
    case RequestType::Status:
    case RequestType::Cancel:
        os << ",\"id\":" << request.id;
        break;
    case RequestType::Wait:
    case RequestType::Shutdown:
        break;
    }
    os << '}';
    return os.str();
}

std::string
writeResponseLine(const Response& response)
{
    std::ostringstream os;
    writeHead(os, responseTypeName(response.type));
    switch (response.type) {
    case ResponseType::Submitted:
        os << ",\"id\":" << response.id;
        os << ",\"name\":";
        writeString(os, response.name);
        os << ",\"state\":\"" << jobStateName(response.state) << '"';
        break;
    case ResponseType::Rejected:
        os << ",\"name\":";
        writeString(os, response.name);
        os << ",\"error\":";
        writeString(os, response.message);
        break;
    case ResponseType::Status:
        os << ",\"id\":" << response.id;
        os << ",\"name\":";
        writeString(os, response.name);
        os << ",\"kind\":\"" << jobKindName(response.kind) << '"';
        os << ",\"state\":\"" << jobStateName(response.state) << '"';
        os << ",\"error\":";
        writeString(os, response.message);
        os << ",\"result\":";
        if (response.hasResult)
            writeResult(os, response.result);
        else
            os << "null";
        os << ",\"metrics\":";
        if (response.hasMetrics) {
            os << '{';
            bool first = true;
            for (const auto& [key, count] : response.metrics) {
                if (!first)
                    os << ',';
                first = false;
                writeString(os, key);
                os << ':' << count;
            }
            os << '}';
        } else {
            os << "null";
        }
        break;
    case ResponseType::Cancelled:
        os << ",\"id\":" << response.id;
        os << ",\"ok\":" << (response.ok ? "true" : "false");
        break;
    case ResponseType::Idle:
        os << ",\"jobs\":" << response.jobs;
        break;
    case ResponseType::Error:
        os << ",\"message\":";
        writeString(os, response.message);
        break;
    case ResponseType::Bye:
        os << ",\"submitted\":" << response.submitted;
        os << ",\"completed\":" << response.completed;
        os << ",\"failed\":" << response.failed;
        os << ",\"cancelled\":" << response.cancelled;
        os << ",\"rejected\":" << response.rejected;
        break;
    }
    os << '}';
    return os.str();
}

bool
parseRequestLine(const std::string& line, Request& out, std::string& error)
{
    try {
        Scanner sc(line);
        out = Request{};
        sc.expect('{');
        sc.expectKey("schema");
        const std::string schema = sc.parseString();
        if (schema != kJobSchema)
            sc.fail("unsupported schema \"" + schema + "\"");
        sc.expect(',');
        sc.expectKey("type");
        const std::string type = sc.parseString();
        if (type == "submit") {
            out.type = RequestType::Submit;
            sc.expect(',');
            sc.expectKey("name");
            out.job.name = sc.parseString();
            sc.expect(',');
            sc.expectKey("kind");
            out.job.kind = parseKindName(sc);
            sc.expect(',');
            sc.expectKey("priority");
            out.job.priority = sc.parseI64();
            sc.expect(',');
            sc.expectKey("seed");
            out.job.seed = sc.parseU64();
            sc.expect(',');
            sc.expectKey("params");
            parseParams(sc, out.job);
        } else if (type == "status" || type == "cancel") {
            out.type = type == "status" ? RequestType::Status
                                        : RequestType::Cancel;
            sc.expect(',');
            sc.expectKey("id");
            out.id = sc.parseJobId();
        } else if (type == "wait") {
            out.type = RequestType::Wait;
        } else if (type == "shutdown") {
            out.type = RequestType::Shutdown;
        } else {
            sc.fail("unknown request type \"" + type + "\"");
        }
        sc.expect('}');
        sc.finish();
        return true;
    } catch (const core::json::ScanError& e) {
        error = scanDiagnostic(e);
        return false;
    }
}

bool
parseResponseLine(const std::string& line, Response& out,
                  std::string& error)
{
    try {
        Scanner sc(line);
        out = Response{};
        sc.expect('{');
        sc.expectKey("schema");
        const std::string schema = sc.parseString();
        if (schema != kJobSchema)
            sc.fail("unsupported schema \"" + schema + "\"");
        sc.expect(',');
        sc.expectKey("type");
        const std::string type = sc.parseString();
        if (type == "submitted") {
            out.type = ResponseType::Submitted;
            sc.expect(',');
            sc.expectKey("id");
            out.id = sc.parseJobId();
            sc.expect(',');
            sc.expectKey("name");
            out.name = sc.parseString();
            sc.expect(',');
            sc.expectKey("state");
            out.state = parseStateName(sc);
        } else if (type == "rejected") {
            out.type = ResponseType::Rejected;
            sc.expect(',');
            sc.expectKey("name");
            out.name = sc.parseString();
            sc.expect(',');
            sc.expectKey("error");
            out.message = sc.parseString();
        } else if (type == "status") {
            out.type = ResponseType::Status;
            sc.expect(',');
            sc.expectKey("id");
            out.id = sc.parseJobId();
            sc.expect(',');
            sc.expectKey("name");
            out.name = sc.parseString();
            sc.expect(',');
            sc.expectKey("kind");
            out.kind = parseKindName(sc);
            sc.expect(',');
            sc.expectKey("state");
            out.state = parseStateName(sc);
            sc.expect(',');
            sc.expectKey("error");
            out.message = sc.parseString();
            sc.expect(',');
            sc.expectKey("result");
            if (sc.consumeNull()) {
                out.hasResult = false;
            } else {
                out.hasResult = true;
                parseResult(sc, out.result);
            }
            sc.expect(',');
            sc.expectKey("metrics");
            if (sc.consumeNull()) {
                out.hasMetrics = false;
            } else {
                out.hasMetrics = true;
                parseMetrics(sc, out.metrics);
            }
        } else if (type == "cancelled") {
            out.type = ResponseType::Cancelled;
            sc.expect(',');
            sc.expectKey("id");
            out.id = sc.parseJobId();
            sc.expect(',');
            sc.expectKey("ok");
            out.ok = sc.parseBool();
        } else if (type == "idle") {
            out.type = ResponseType::Idle;
            sc.expect(',');
            sc.expectKey("jobs");
            out.jobs = sc.parseU64();
        } else if (type == "error") {
            out.type = ResponseType::Error;
            sc.expect(',');
            sc.expectKey("message");
            out.message = sc.parseString();
        } else if (type == "bye") {
            out.type = ResponseType::Bye;
            sc.expect(',');
            sc.expectKey("submitted");
            out.submitted = sc.parseU64();
            sc.expect(',');
            sc.expectKey("completed");
            out.completed = sc.parseU64();
            sc.expect(',');
            sc.expectKey("failed");
            out.failed = sc.parseU64();
            sc.expect(',');
            sc.expectKey("cancelled");
            out.cancelled = sc.parseU64();
            sc.expect(',');
            sc.expectKey("rejected");
            out.rejected = sc.parseU64();
        } else {
            sc.fail("unknown response type \"" + type + "\"");
        }
        sc.expect('}');
        sc.finish();
        return true;
    } catch (const core::json::ScanError& e) {
        error = scanDiagnostic(e);
        return false;
    }
}

Response
makeStatusResponse(const JobStatus& status)
{
    Response response;
    response.type = ResponseType::Status;
    response.id = status.id;
    response.name = status.spec.name;
    response.kind = status.spec.kind;
    response.state = status.state;
    response.message = status.error;
    if (status.state == JobState::Done) {
        response.hasResult = true;
        response.result = status.result;
    }
    if (!status.metricsDelta.empty()) {
        response.hasMetrics = true;
        response.metrics = status.metricsDelta;
    }
    return response;
}

} // namespace service
} // namespace hetarch
