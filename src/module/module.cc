#include "module/module.hh"

#include <algorithm>

#include "core/logging.hh"

namespace hetarch {
namespace module {

double
composeErrors(const std::vector<double>& errors)
{
    double keep = 1.0;
    for (auto e : errors) {
        HETARCH_ASSERT(e >= 0.0 && e <= 1.0, "error rate out of range");
        keep *= 1.0 - e;
    }
    return 1.0 - keep;
}

double
serialDuration(const std::vector<double>& durations)
{
    double total = 0.0;
    for (auto d : durations)
        total += d;
    return total;
}

double
parallelDuration(const std::vector<double>& durations)
{
    double longest = 0.0;
    for (auto d : durations)
        longest = std::max(longest, d);
    return longest;
}

std::size_t
Module::addCell(cells::StandardCell cell)
{
    cellInstances.push_back(std::move(cell));
    return cellInstances.size() - 1;
}

std::size_t
Module::addSubModule(Module sub)
{
    subs.push_back(std::move(sub));
    return subs.size() - 1;
}

void
Module::addOp(ModuleOp op)
{
    opTable.push_back(std::move(op));
}

const ModuleOp&
Module::op(const std::string& name) const
{
    for (const auto& o : opTable)
        if (o.name == name)
            return o;
    HETARCH_FATAL(moduleName, ": no module op named '", name, "'");
}

double
Module::footprintArea() const
{
    double area = 0.0;
    for (const auto& c : cellInstances)
        area += c.footprintArea();
    for (const auto& s : subs)
        area += s.footprintArea();
    return area;
}

int
Module::controlLines() const
{
    int lines = 0;
    for (const auto& c : cellInstances)
        lines += c.controlLines();
    for (const auto& s : subs)
        lines += s.controlLines();
    return lines;
}

int
Module::qubitCapacity() const
{
    int cap = 0;
    for (const auto& c : cellInstances)
        cap += c.qubitCapacity();
    for (const auto& s : subs)
        cap += s.qubitCapacity();
    return cap;
}

} // namespace module
} // namespace hetarch
