/**
 * @file
 * Module layer of the HetArch hierarchy.
 *
 * Modules execute algorithm-level subroutines (entanglement
 * distillation, error correction, code teleportation).  A module is a
 * composition of standard cells and sub-modules; its performance is
 * characterized *phenomenologically*: operation durations add along
 * the critical path and independent error rates compose as
 * 1 - prod(1 - e_i), instead of simulating the joint density matrix
 * (paper Section 2 — this is what keeps evaluation tractable).
 */

#pragma once

#include <string>
#include <vector>

#include "cells/characterize.hh"
#include "cells/cell.hh"

namespace hetarch {
namespace module {

/** A characterized module-level operation. */
struct ModuleOp
{
    std::string name;
    double duration = 0.0;  ///< ns, critical path
    double errorRate = 0.0; ///< composed error probability
};

/** Compose independent error probabilities: 1 - prod(1 - e_i). */
double composeErrors(const std::vector<double>& errors);

/** Sum of durations (serial schedule). */
double serialDuration(const std::vector<double>& durations);

/** Max of durations (parallel schedule). */
double parallelDuration(const std::vector<double>& durations);

/**
 * A module: named collection of cells and sub-modules with an exported
 * operation table.
 */
class Module
{
  public:
    explicit Module(std::string name_in) : moduleName(std::move(name_in)) {}

    const std::string& name() const { return moduleName; }

    /** Add a standard cell instance; returns its index. */
    std::size_t addCell(cells::StandardCell cell);
    /** Nest a sub-module; returns its index. */
    std::size_t addSubModule(Module sub);
    /** Export a characterized operation. */
    void addOp(ModuleOp op);

    const std::vector<cells::StandardCell>& cellList() const
    {
        return cellInstances;
    }
    const std::vector<Module>& subModules() const { return subs; }
    const std::vector<ModuleOp>& ops() const { return opTable; }

    /** Lookup an exported op by name; fatal when missing. */
    const ModuleOp& op(const std::string& name) const;

    /** Aggregate footprint of all cells and sub-modules (mm^2). */
    double footprintArea() const;
    /** Aggregate control lines. */
    int controlLines() const;
    /** Aggregate qubit capacity. */
    int qubitCapacity() const;

  private:
    std::string moduleName;
    std::vector<cells::StandardCell> cellInstances;
    std::vector<Module> subs;
    std::vector<ModuleOp> opTable;
};

} // namespace module
} // namespace hetarch
