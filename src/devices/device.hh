/**
 * @file
 * Superconducting device models (paper Table 1).
 *
 * Devices are the atomic layer of the HetArch hierarchy: physical
 * elements that store and manipulate quantum information, labeled with
 * coherence, gate, connectivity, control-overhead and footprint
 * properties.  Standard cells are assembled from these descriptors
 * subject to the design rules (src/cells/design_rules.hh).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "core/units.hh"

namespace hetarch {
namespace devices {

/** Functional classification used by the design rules. */
enum class DeviceRole : std::uint8_t
{
    Compute, ///< fast gates, high connectivity, single-qubit capacity
    Storage, ///< long coherence, 1 connection, multi-qubit capacity
};

/** Physical footprint in millimetres (depth 0 for planar devices). */
struct Footprint
{
    double x_mm = 0.0;
    double y_mm = 0.0;
    double z_mm = 0.0;

    double area() const { return x_mm * y_mm; }
};

/** Control wiring required to operate a device. */
struct ControlOverhead
{
    int chargeLines = 0;
    int fluxLines = 0;
    int readoutLines = 0;

    int total() const { return chargeLines + fluxLines + readoutLines; }
};

/** One device model (a row of Table 1). */
struct DeviceModel
{
    std::string name;
    DeviceRole role = DeviceRole::Compute;

    double t1 = 0.0;            ///< amplitude-damping time, ns
    double t2 = 0.0;            ///< dephasing time, ns
    double readoutTime = 0.0;   ///< ns; 0 when no native readout
    bool hasReadout = false;

    double gateTime1q = 0.0;    ///< ns (0 when gate set lacks 1q gates)
    double gateTime2q = 0.0;    ///< ns (SWAP time for storage devices)
    double gateError = 0.0;     ///< average gate infidelity

    int connectivity = 0;       ///< max couplings
    int modes = 1;              ///< qubit capacity (multimode storage)

    ControlOverhead control;
    Footprint footprint;
    std::string notes;

    /** Sanity constraints: T2 <= 2*T1, positive times. */
    void validate() const;
};

/** Fixed-frequency transmon qubit (compute). */
DeviceModel fixedFrequencyTransmon();
/** Flux-tunable qubit, e.g. fluxonium (compute). */
DeviceModel fluxTunableQubit();
/** 3D quantum memory cavity (storage, 25 ms). */
DeviceModel quantumMemory3D();
/** 3D multimode resonator, 10 modes (storage, 2 ms). */
DeviceModel multimodeResonator3D();
/** Projected on-chip multimode resonator (storage, 1 ms). */
DeviceModel onChipMultimodeResonator();

/** All Table 1 devices, in paper order. */
std::vector<DeviceModel> table1Catalog();

/**
 * A storage device variant with the given per-mode coherence time —
 * the Ts axis swept throughout Section 4 (0.5 ms ... 50 ms).
 */
DeviceModel storageWithCoherence(double ts_ns, int modes = 10);

/** A compute device variant with the given coherence time (Tc = T1 = T2). */
DeviceModel computeWithCoherence(double tc_ns);

/**
 * Fabrication-variability model (paper Section 5: device variability
 * acts like p-cells in classical design).  Coherence times and gate
 * error are jittered log-normally with relative spread @p sigma;
 * the T2 <= 2*T1 constraint is re-imposed after sampling.
 */
DeviceModel perturbedDevice(const DeviceModel& nominal, double sigma,
                            Rng& rng);

} // namespace devices
} // namespace hetarch
