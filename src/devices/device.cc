#include "devices/device.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/logging.hh"

namespace hetarch {
namespace devices {

using namespace units;

namespace {

/**
 * Render a time in milliseconds for device labels: up to six
 * significant digits, no trailing zeros — "0.1", "2.5", "25" instead
 * of std::to_string's fixed "0.100000".
 */
std::string
formatMs(double t_ns)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", t_ns / units::ms);
    return buf;
}

} // namespace

void
DeviceModel::validate() const
{
    if (t1 <= 0.0 || t2 <= 0.0)
        HETARCH_FATAL(name, ": coherence times must be positive");
    if (t2 > 2.0 * t1 + 1e-9)
        HETARCH_FATAL(name, ": unphysical T2 > 2*T1");
    if (modes < 1)
        HETARCH_FATAL(name, ": capacity must be >= 1 qubit");
    if (role == DeviceRole::Storage && connectivity != 1)
        HETARCH_FATAL(name, ": storage devices couple to exactly one "
                            "compute device (DR2)");
}

DeviceModel
fixedFrequencyTransmon()
{
    DeviceModel d;
    d.name = "fixed-frequency-transmon";
    d.role = DeviceRole::Compute;
    d.t1 = 300.0 * us;
    d.t2 = 550.0 * us;
    d.readoutTime = 1.0 * us;
    d.hasReadout = true;
    d.gateTime1q = 40.0;
    d.gateTime2q = 100.0;
    d.gateError = 1e-3;
    d.connectivity = 4;
    d.control = {1, 0, 1};
    d.footprint = {2.0 * mm, 2.0 * mm, 0.0};
    d.notes = "e.g. transmon";
    return d;
}

DeviceModel
fluxTunableQubit()
{
    DeviceModel d;
    d.name = "flux-tunable-qubit";
    d.role = DeviceRole::Compute;
    d.t1 = 800.0 * us;
    d.t2 = 200.0 * us;
    d.readoutTime = 1.0 * us;
    d.hasReadout = true;
    d.gateTime1q = 40.0;
    d.gateTime2q = 100.0;
    d.gateError = 1e-3;
    d.connectivity = 4;
    d.control = {1, 1, 1};
    d.footprint = {2.0 * mm, 2.0 * mm, 0.0};
    d.notes = "e.g. fluxonium";
    return d;
}

DeviceModel
quantumMemory3D()
{
    DeviceModel d;
    d.name = "3d-quantum-memory";
    d.role = DeviceRole::Storage;
    d.t1 = 25.0 * units::ms;
    d.t2 = 30.0 * units::ms;
    d.hasReadout = false;
    d.gateTime2q = 1.0 * us; // SWAP
    d.gateError = 1e-2;
    d.connectivity = 1;
    d.modes = 1;
    d.footprint = {50.0 * mm, 0.5 * mm, 1.0 * mm};
    d.notes = "requires 2D/3D integration";
    return d;
}

DeviceModel
multimodeResonator3D()
{
    DeviceModel d;
    d.name = "3d-multimode-resonator";
    d.role = DeviceRole::Storage;
    d.t1 = 2.0 * units::ms;
    d.t2 = 2.5 * units::ms;
    d.hasReadout = false;
    d.gateTime2q = 400.0; // SWAP
    d.gateError = 1e-2;
    d.connectivity = 1;
    d.modes = 10;
    d.footprint = {100.0 * mm, 100.0 * mm, 10.0 * mm};
    d.notes = "requires 2D/3D integration";
    return d;
}

DeviceModel
onChipMultimodeResonator()
{
    DeviceModel d;
    d.name = "on-chip-multimode-resonator";
    d.role = DeviceRole::Storage;
    d.t1 = 1.0 * units::ms;
    d.t2 = 1.0 * units::ms;
    d.hasReadout = false;
    d.gateTime2q = 100.0; // SWAP
    d.gateError = 1e-2;
    d.connectivity = 1;
    d.modes = 10;
    d.footprint = {5.0 * mm, 5.0 * mm, 0.0};
    d.notes = "no demonstration yet";
    return d;
}

std::vector<DeviceModel>
table1Catalog()
{
    return {fixedFrequencyTransmon(), fluxTunableQubit(),
            quantumMemory3D(), multimodeResonator3D(),
            onChipMultimodeResonator()};
}

DeviceModel
storageWithCoherence(double ts_ns, int modes)
{
    DeviceModel d = multimodeResonator3D();
    d.name = "storage-ts-" + formatMs(ts_ns) + "ms";
    d.t1 = ts_ns;
    d.t2 = ts_ns;
    d.modes = modes;
    return d;
}

DeviceModel
computeWithCoherence(double tc_ns)
{
    DeviceModel d = fixedFrequencyTransmon();
    d.name = "compute-tc-" + formatMs(tc_ns) + "ms";
    d.t1 = tc_ns;
    d.t2 = tc_ns;
    return d;
}

DeviceModel
perturbedDevice(const DeviceModel& nominal, double sigma, Rng& rng)
{
    HETARCH_ASSERT(sigma >= 0.0 && sigma < 1.0,
                   "variability sigma out of range");
    DeviceModel out = nominal;
    auto jitter = [&](double value) {
        // Log-normal with median = nominal value.
        return value * std::exp(sigma * rng.normal());
    };
    out.t1 = jitter(nominal.t1);
    out.t2 = std::min(jitter(nominal.t2), 2.0 * out.t1);
    out.gateError = jitter(nominal.gateError);
    out.name = nominal.name + "-sampled";
    return out;
}

} // namespace devices
} // namespace hetarch
