#include "cells/standard_cells.hh"

#include "core/logging.hh"

namespace hetarch {
namespace cells {

using devices::DeviceModel;
using devices::DeviceRole;

StandardCell
makeRegister(const DeviceModel& storage, const DeviceModel& compute)
{
    HETARCH_ASSERT(storage.role == DeviceRole::Storage,
                   "Register needs a storage device");
    HETARCH_ASSERT(compute.role == DeviceRole::Compute,
                   "Register needs a compute device");
    StandardCell cell("Register");
    const auto s = cell.addDevice({storage, "storage", false, 0});
    const auto c = cell.addDevice({compute, "io-compute", false, 3});
    cell.addCoupling(s, c);
    return cell;
}

StandardCell
makeParCheck(const DeviceModel& compute)
{
    StandardCell cell("ParCheck");
    auto plain = compute;
    plain.hasReadout = false;
    const auto a = cell.addDevice({plain, "gate-compute", false, 3});
    const auto b = cell.addDevice({compute, "readout-compute", true, 3});
    cell.addCoupling(a, b);
    return cell;
}

namespace {

/** Add one Register sub-cell to @p cell; returns its compute index. */
std::size_t
addRegisterSub(StandardCell& cell, const DeviceModel& storage,
               const DeviceModel& compute, int compute_external_ports,
               const std::string& suffix)
{
    auto s = cell.addDevice(
        {storage, "storage" + suffix, false, 0});
    auto c = cell.addDevice(
        {compute, "io-compute" + suffix, false, compute_external_ports});
    cell.addCoupling(s, c);
    cell.addSubCell({"Register" + suffix, {s, c}});
    return c;
}

} // namespace

StandardCell
makeSeqOp(const DeviceModel& storage, const DeviceModel& compute)
{
    StandardCell cell("SeqOp");
    // Register computes each have 1 free external port: the internal
    // triangle uses 3 of their 4 allowed couplings (DR1).
    const auto c0 = addRegisterSub(cell, storage, compute, 1, "0");
    const auto c1 = addRegisterSub(cell, storage, compute, 1, "1");
    const auto p = cell.addDevice({compute, "parity-compute", true, 1});
    cell.addCoupling(c0, c1);
    cell.addCoupling(c0, p);
    cell.addCoupling(c1, p);
    return cell;
}

StandardCell
makeUsc(const DeviceModel& storage, const DeviceModel& compute)
{
    StandardCell cell("USC");
    const auto c0 = addRegisterSub(cell, storage, compute, 1, "0");
    const auto c1 = addRegisterSub(cell, storage, compute, 1, "1");
    const auto c2 = addRegisterSub(cell, storage, compute, 1, "2");
    const auto p = cell.addDevice({compute, "ancilla-compute", true, 1});
    cell.addCoupling(c0, p);
    cell.addCoupling(c1, p);
    cell.addCoupling(c2, p);
    return cell;
}

StandardCell
makeUscExt(const DeviceModel& storage, const DeviceModel& compute)
{
    StandardCell cell("USC-EXT");
    const auto c0 = addRegisterSub(cell, storage, compute, 1, "0");
    const auto c1 = addRegisterSub(cell, storage, compute, 1, "1");
    // Two external ports let USC-EXT chain between a USC and another
    // USC-EXT while respecting DR1.
    const auto p = cell.addDevice({compute, "ancilla-compute", true, 2});
    cell.addCoupling(c0, p);
    cell.addCoupling(c1, p);
    return cell;
}

std::vector<StandardCell>
table2Cells()
{
    const auto storage = devices::multimodeResonator3D();
    const auto compute = devices::fixedFrequencyTransmon();
    return {makeRegister(storage, compute), makeParCheck(compute),
            makeSeqOp(storage, compute), makeUsc(storage, compute)};
}

} // namespace cells
} // namespace hetarch
