#include "cells/cell.hh"

#include <algorithm>

#include "core/logging.hh"

namespace hetarch {
namespace cells {

std::size_t
StandardCell::addDevice(CellDevice device)
{
    device.model.validate();
    devs.push_back(std::move(device));
    return devs.size() - 1;
}

void
StandardCell::addCoupling(std::size_t a, std::size_t b)
{
    HETARCH_ASSERT(a < devs.size() && b < devs.size(),
                   "coupling endpoint out of range");
    HETARCH_ASSERT(a != b, "no self-coupling");
    for (const auto& e : edges) {
        if ((e.a == a && e.b == b) || (e.a == b && e.b == a))
            HETARCH_FATAL(cellName, ": duplicate coupling ", a, "-", b);
    }
    edges.push_back({a, b});
}

void
StandardCell::addSubCell(SubCell sub)
{
    for (auto d : sub.devices)
        HETARCH_ASSERT(d < devs.size(), "sub-cell device out of range");
    subs.push_back(std::move(sub));
}

int
StandardCell::degree(std::size_t i) const
{
    int n = 0;
    for (const auto& e : edges)
        if (e.a == i || e.b == i)
            ++n;
    return n;
}

int
StandardCell::totalDegree(std::size_t i) const
{
    return degree(i) + devs[i].externalPorts;
}

std::vector<std::size_t>
StandardCell::neighbors(std::size_t i) const
{
    std::vector<std::size_t> out;
    for (const auto& e : edges) {
        if (e.a == i)
            out.push_back(e.b);
        else if (e.b == i)
            out.push_back(e.a);
    }
    return out;
}

bool
StandardCell::isConnected() const
{
    if (devs.empty())
        return true;
    std::vector<bool> seen(devs.size(), false);
    std::vector<std::size_t> stack{0};
    seen[0] = true;
    std::size_t count = 1;
    while (!stack.empty()) {
        const auto v = stack.back();
        stack.pop_back();
        for (auto w : neighbors(v)) {
            if (!seen[w]) {
                seen[w] = true;
                ++count;
                stack.push_back(w);
            }
        }
    }
    return count == devs.size();
}

std::size_t
StandardCell::readoutCount() const
{
    return static_cast<std::size_t>(
        std::count_if(devs.begin(), devs.end(),
                      [](const CellDevice& d) { return d.readout; }));
}

double
StandardCell::footprintArea() const
{
    double area = 0.0;
    for (const auto& d : devs)
        area += d.model.footprint.area();
    return area;
}

int
StandardCell::controlLines() const
{
    int lines = 0;
    for (const auto& d : devs)
        lines += d.model.control.total();
    return lines;
}

int
StandardCell::qubitCapacity() const
{
    int cap = 0;
    for (const auto& d : devs)
        cap += d.model.modes;
    return cap;
}

} // namespace cells
} // namespace hetarch
