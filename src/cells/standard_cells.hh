/**
 * @file
 * The quantum standard cells of paper Table 2: Register, ParCheck,
 * SeqOp, USC and USC-EXT, parameterized by the compute and storage
 * device models they are assembled from.
 */

#pragma once

#include "cells/cell.hh"

namespace hetarch {
namespace cells {

/**
 * Register: a storage device coupled to one compute device that
 * manages input/output (DR2), with up to three external connections
 * from the compute device and no readout (DR4).
 */
StandardCell makeRegister(const devices::DeviceModel& storage,
                          const devices::DeviceModel& compute);

/**
 * ParCheck: two coupled compute devices optimized for one/two-qubit
 * gates; one has readout for parity checks.  Up to three external
 * connections from each device.
 */
StandardCell makeParCheck(const devices::DeviceModel& compute);

/**
 * SeqOp: two Register sub-cells whose compute devices are coupled to
 * each other and to a readout-equipped parity-check compute device
 * (a triangle), optimized for long runs of sequential two-qubit
 * operations between stored qubits (CAT-state generation).
 */
StandardCell makeSeqOp(const devices::DeviceModel& storage,
                       const devices::DeviceModel& compute);

/**
 * USC (universal stabilizer cell): three Register sub-cells around a
 * central readout-equipped compute device holding the ancilla for
 * serialized stabilizer checks.
 */
StandardCell makeUsc(const devices::DeviceModel& storage,
                     const devices::DeviceModel& compute);

/**
 * USC-EXT: the two-Register extension cell that chains onto a USC to
 * extend the universal error-correction module to larger codes.
 */
StandardCell makeUscExt(const devices::DeviceModel& storage,
                        const devices::DeviceModel& compute);

/** All Table 2 cells built from the default device catalog. */
std::vector<StandardCell> table2Cells();

} // namespace cells
} // namespace hetarch
