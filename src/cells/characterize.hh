/**
 * @file
 * Standard-cell characterization by exact density-matrix simulation.
 *
 * Following the paper's methodology (Sections 2 and 3.2): the
 * performance of a standard cell is extracted from device-level
 * density-matrix simulation of its signature operations, producing a
 * (duration, error-rate) pair per operation.  Modules then compose
 * these characterizations phenomenologically instead of jointly
 * simulating everything — the key to the claimed >=10^4x reduction in
 * simulation burden.
 *
 * Error rates are average-gate-error style: the operation is applied
 * to one half of a maximally entangled reference pair, giving the
 * entanglement fidelity F_e, converted to average fidelity via
 * F_avg = (d F_e + 1) / (d + 1).
 */

#pragma once

#include <string>
#include <vector>

#include "cells/cell.hh"

namespace hetarch {
namespace cells {

/** One characterized cell operation. */
struct CharacterizedOp
{
    std::string name;
    double duration = 0.0;   ///< ns
    double errorRate = 0.0;  ///< 1 - average fidelity
};

/** Characterization of one cell. */
struct CellCharacterization
{
    std::string cell;
    std::vector<CharacterizedOp> ops;

    /** Lookup by name; fatal when missing. */
    const CharacterizedOp& op(const std::string& name) const;
};

/** Characterization knobs. */
struct CharacterizeOptions
{
    /**
     * When true (paper Section 4 default), gates are coherence
     * limited: their only error is decoherence during the gate.
     */
    bool coherenceLimitedGates = true;
    /** Extra two-qubit depolarizing error per gate (QEC studies: 1e-2). */
    double extraGateError2q = 0.0;
    /** Readout duration override; <0 uses the device's readout time. */
    double readoutTime = -1.0;
};

/**
 * Register: characterizes "load" / "unload" (SWAP between compute and
 * storage), "idle-1us" (storage decay per microsecond) and
 * "roundtrip" (load + unload).
 */
CellCharacterization characterizeRegister(
    const StandardCell& reg, const CharacterizeOptions& opts = {});

/**
 * ParCheck: characterizes "cnot" (two-qubit gate between the compute
 * devices) and "parity-check" (cnot + readout with the kept qubit
 * idling).
 */
CellCharacterization characterizeParCheck(
    const StandardCell& cell, const CharacterizeOptions& opts = {});

/**
 * SeqOp: characterizes "stored-cnot" (swap both qubits out of their
 * Registers, entangle, swap back) and "verified-cnot" (plus a parity
 * readout on the third compute).
 */
CellCharacterization characterizeSeqOp(
    const StandardCell& cell, const CharacterizeOptions& opts = {});

/**
 * USC: characterizes "stabilizer-check-w{2..6}": serialized CNOTs of a
 * weight-w check through the central ancilla, with storage qubits
 * swapped out and back one at a time, then ancilla readout.  Uses
 * phenomenological composition of the Register/gate primitives, which
 * is how the module layer consumes it.
 */
CellCharacterization characterizeUsc(
    const StandardCell& cell, const CharacterizeOptions& opts = {});

} // namespace cells
} // namespace hetarch
