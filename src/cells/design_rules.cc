#include "cells/design_rules.hh"

#include <sstream>

namespace hetarch {
namespace cells {

namespace {

void
violate(DrcReport& report, int rule, const std::string& msg)
{
    report.violations.push_back({rule, msg});
}

} // namespace

DrcReport
checkDesignRules(const StandardCell& cell, std::size_t required_readouts)
{
    DrcReport report;
    const auto& devs = cell.deviceList();

    for (std::size_t i = 0; i < devs.size(); ++i) {
        const auto& dev = devs[i];
        const int total = cell.totalDegree(i);

        if (dev.model.role == devices::DeviceRole::Compute) {
            // DR1: compute fan-out bounded by 4.
            if (total > 4) {
                std::ostringstream os;
                os << cell.name() << ": compute device '" << dev.label
                   << "' has " << total << " connections (max 4)";
                violate(report, 1, os.str());
            }
            // DR3: also bounded by the device's own connectivity budget.
            if (total > dev.model.connectivity) {
                std::ostringstream os;
                os << cell.name() << ": device '" << dev.label
                   << "' exceeds its connectivity budget ("
                   << total << " > " << dev.model.connectivity << ")";
                violate(report, 3, os.str());
            }
        } else {
            // DR2: storage couples to exactly one compute device.
            const auto nbrs = cell.neighbors(i);
            std::size_t compute_links = 0;
            for (auto n : nbrs)
                if (devs[n].model.role == devices::DeviceRole::Compute)
                    ++compute_links;
            if (compute_links != 1 || nbrs.size() != 1 ||
                dev.externalPorts != 0) {
                std::ostringstream os;
                os << cell.name() << ": storage device '" << dev.label
                   << "' must couple to exactly one compute device";
                violate(report, 2, os.str());
            }
            if (dev.readout) {
                std::ostringstream os;
                os << cell.name() << ": storage device '" << dev.label
                   << "' cannot have direct readout";
                violate(report, 2, os.str());
            }
        }
    }

    // DR3: connectivity must reflect use - the cell graph is connected.
    if (!cell.isConnected()) {
        violate(report, 3,
                cell.name() + ": cell coupling graph is disconnected");
    }

    // DR4: minimal readout.
    if (cell.readoutCount() > required_readouts) {
        std::ostringstream os;
        os << cell.name() << ": " << cell.readoutCount()
           << " readout devices but operations need only "
           << required_readouts;
        violate(report, 4, os.str());
    }
    return report;
}

} // namespace cells
} // namespace hetarch
