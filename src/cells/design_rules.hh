/**
 * @file
 * Design rules for planar superconducting standard cells (paper
 * Section 3.2):
 *
 *   DR1  Compute devices connect to at most 4 other devices.
 *   DR2  Storage devices connect to exactly 1 compute device.
 *   DR3  Device connectivity reflects intended use: the cell graph is
 *        connected and carries no couplings beyond the declared device
 *        connectivity budget.
 *   DR4  Compute devices with readout are minimal: no more readout
 *        sites than the cell's declared measurement needs.
 */

#pragma once

#include <string>
#include <vector>

#include "cells/cell.hh"

namespace hetarch {
namespace cells {

/** One design-rule violation. */
struct DrcViolation
{
    int rule = 0;         ///< 1..4
    std::string message;
};

/** Result of a design-rule check. */
struct DrcReport
{
    std::vector<DrcViolation> violations;
    bool clean() const { return violations.empty(); }
};

/**
 * Check a cell against DR1-DR4.
 *
 * @param required_readouts how many measurement sites the cell's
 *        declared operations need (DR4 compares against this).
 */
DrcReport checkDesignRules(const StandardCell& cell,
                           std::size_t required_readouts);

} // namespace cells
} // namespace hetarch
