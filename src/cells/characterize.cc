#include "cells/characterize.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"
#include "dm/channels.hh"
#include "dm/density_matrix.hh"
#include "dm/gates.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace cells {

using dm::DensityMatrix;
using namespace dm::gates;

namespace {

obs::Counter& cCharacterizations = obs::counter("cells.characterizations");
obs::Counter& cOpsCharacterized = obs::counter("cells.ops_characterized");

/** Count one finished characterization (and its op table) once. */
void
recordCharacterization(const CellCharacterization& ch)
{
    cCharacterizations.add();
    cOpsCharacterized.add(ch.ops.size());
}

} // namespace

const CharacterizedOp&
CellCharacterization::op(const std::string& name) const
{
    for (const auto& o : ops)
        if (o.name == name)
            return o;
    HETARCH_FATAL(cell, ": no characterized op named '", name, "'");
}

namespace {

/** Find the first device of a role (optionally requiring readout). */
std::size_t
findDevice(const StandardCell& cell, devices::DeviceRole role,
           int readout_state = -1)
{
    const auto& devs = cell.deviceList();
    for (std::size_t i = 0; i < devs.size(); ++i) {
        if (devs[i].model.role != role)
            continue;
        if (readout_state >= 0 &&
            devs[i].readout != static_cast<bool>(readout_state))
            continue;
        return i;
    }
    HETARCH_FATAL(cell.name(), ": expected device not found");
}

/** Apply T1/T2 idling to one qubit of a register. */
void
idle(DensityMatrix& rho, std::size_t q, double t,
     const devices::DeviceModel& dev)
{
    rho.applyKraus(dm::channels::idleChannel(t, dev.t1, dev.t2), {q});
}

/** Average fidelity from entanglement fidelity in dimension d. */
double
avgFromEntanglement(double f_e, double dim)
{
    return (dim * f_e + 1.0) / (dim + 1.0);
}

/**
 * Entanglement fidelity of a single-qubit channel: Bell pair with an
 * ideal reference on qubit 1, channel applied to qubit 0 via @p apply.
 */
template <typename Fn>
double
oneQubitChannelError(Fn&& apply)
{
    DensityMatrix rho = DensityMatrix::bellPair();
    apply(rho, std::size_t{0});
    const double f_e = rho.bellFidelity();
    return 1.0 - avgFromEntanglement(f_e, 2.0);
}

/**
 * Entanglement fidelity of a two-qubit channel that should equal the
 * ideal unitary @p ideal: two Bell pairs, system = qubits {0, 1},
 * references = {2, 3}; after applying the channel the inverse ideal is
 * applied and fidelity against the double Bell state is extracted.
 */
template <typename Fn>
double
twoQubitChannelError(const linalg::Matrix& ideal, Fn&& apply)
{
    // Bell pairs (0,2) and (1,3).
    DensityMatrix rho(4);
    rho.applyUnitary(H(), {0});
    rho.applyUnitary(cnot(), {0, 2});
    rho.applyUnitary(H(), {1});
    rho.applyUnitary(cnot(), {1, 3});
    const DensityMatrix target = rho;

    apply(rho);
    rho.applyUnitary(ideal.dagger(), {0, 1});

    // Entanglement fidelity = overlap with the original pure state.
    // target is pure, so F = Tr(rho_target * rho).
    const double f_e = (target.matrix() * rho.matrix()).trace().real();
    return 1.0 - avgFromEntanglement(std::clamp(f_e, 0.0, 1.0), 4.0);
}

/** Compose independent error rates: 1 - prod(1 - e_i). */
double
compose(const std::vector<double>& errs)
{
    double keep = 1.0;
    for (auto e : errs)
        keep *= 1.0 - e;
    return 1.0 - keep;
}

} // namespace

CellCharacterization
characterizeRegister(const StandardCell& reg,
                     const CharacterizeOptions& opts)
{
    const auto s = findDevice(reg, devices::DeviceRole::Storage);
    const auto c = findDevice(reg, devices::DeviceRole::Compute);
    const auto& storage = reg.deviceList()[s].model;
    const auto& compute = reg.deviceList()[c].model;

    const double t_swap = storage.gateTime2q;

    // Load: qubit starts on the compute device, SWAPs into storage.
    // Decoherence acts on both devices during the swap; the extra
    // non-coherence gate error (if any) is the storage SWAP infidelity.
    auto swap_error = [&](bool into_storage) {
        return oneQubitChannelError([&](DensityMatrix& rho,
                                        std::size_t q) {
            // Second register qubit models the swap partner.
            (void)q;
            DensityMatrix joint = DensityMatrix::tensor(
                rho, DensityMatrix(1)); // qubit 2 = partner in |0>
            // Swap qubit 0 <-> 2 with idling on both.
            const auto& src = into_storage ? compute : storage;
            const auto& dst = into_storage ? storage : compute;
            idle(joint, 0, t_swap, src);
            idle(joint, 2, t_swap, dst);
            joint.applyUnitary(swapGate(), {0, 2});
            if (!opts.coherenceLimitedGates) {
                joint.applyKraus(
                    dm::channels::depolarizing2(storage.gateError),
                    {0, 2});
            }
            joint.applyUnitary(swapGate(), {0, 2}); // move back for
                                                    // fidelity extraction
            rho = joint.partialTrace({0, 1});
        });
    };

    CellCharacterization out;
    out.cell = reg.name();
    out.ops.push_back({"load", t_swap, swap_error(true)});
    out.ops.push_back({"unload", t_swap, swap_error(false)});
    out.ops.push_back(
        {"roundtrip", 2.0 * t_swap,
         compose({swap_error(true), swap_error(false)})});

    const double us = 1000.0;
    const double idle_err = oneQubitChannelError(
        [&](DensityMatrix& rho, std::size_t q) {
            idle(rho, q, us, storage);
        });
    out.ops.push_back({"idle-1us", us, idle_err});
    recordCharacterization(out);
    return out;
}

CellCharacterization
characterizeParCheck(const StandardCell& cell,
                     const CharacterizeOptions& opts)
{
    const auto a = findDevice(cell, devices::DeviceRole::Compute, 0);
    const auto b = findDevice(cell, devices::DeviceRole::Compute, 1);
    const auto& dev_a = cell.deviceList()[a].model;
    const auto& dev_b = cell.deviceList()[b].model;

    const double t2q = dev_a.gateTime2q;
    const double t_read =
        opts.readoutTime >= 0 ? opts.readoutTime : dev_b.readoutTime;

    const double cnot_err = twoQubitChannelError(
        cnot(), [&](DensityMatrix& rho) {
            idle(rho, 0, t2q, dev_a);
            idle(rho, 1, t2q, dev_b);
            rho.applyUnitary(cnot(), {0, 1});
            if (!opts.coherenceLimitedGates || opts.extraGateError2q > 0) {
                rho.applyKraus(dm::channels::depolarizing2(
                                   opts.extraGateError2q > 0
                                       ? opts.extraGateError2q
                                       : dev_a.gateError),
                               {0, 1});
            }
        });

    // During readout of qubit b, the kept qubit a idles.
    const double kept_idle_err = oneQubitChannelError(
        [&](DensityMatrix& rho, std::size_t q) {
            idle(rho, q, t_read, dev_a);
        });

    CellCharacterization out;
    out.cell = cell.name();
    out.ops.push_back({"cnot", t2q, cnot_err});
    out.ops.push_back({"parity-check", t2q + t_read,
                       compose({cnot_err, kept_idle_err})});
    recordCharacterization(out);
    return out;
}

CellCharacterization
characterizeSeqOp(const StandardCell& cell, const CharacterizeOptions& opts)
{
    const auto s = findDevice(cell, devices::DeviceRole::Storage);
    const auto c = findDevice(cell, devices::DeviceRole::Compute, 0);
    const auto p = findDevice(cell, devices::DeviceRole::Compute, 1);
    const auto& storage = cell.deviceList()[s].model;
    const auto& compute = cell.deviceList()[c].model;
    const auto& parity = cell.deviceList()[p].model;

    const double t_swap = storage.gateTime2q;
    const double t2q = compute.gateTime2q;
    const double t_read =
        opts.readoutTime >= 0 ? opts.readoutTime : parity.readoutTime;

    // stored-cnot: both qubits swap compute<->storage around the gate.
    const double stored_cnot_err = twoQubitChannelError(
        cnot(), [&](DensityMatrix& rho) {
            // Unload: decoherence at storage+compute rates during swap.
            for (std::size_t q : {0, 1}) {
                idle(rho, q, t_swap, storage);
                idle(rho, q, t_swap, compute);
            }
            // Gate on the compute devices.
            idle(rho, 0, t2q, compute);
            idle(rho, 1, t2q, compute);
            rho.applyUnitary(cnot(), {0, 1});
            if (opts.extraGateError2q > 0) {
                rho.applyKraus(
                    dm::channels::depolarizing2(opts.extraGateError2q),
                    {0, 1});
            }
            // Reload.
            for (std::size_t q : {0, 1}) {
                idle(rho, q, t_swap, storage);
                idle(rho, q, t_swap, compute);
            }
        });

    // Idling in storage while the parity ancilla is read out.
    const double verify_idle_err = compose(
        {oneQubitChannelError([&](DensityMatrix& rho, std::size_t q) {
             idle(rho, q, t_read, storage);
         }),
         oneQubitChannelError([&](DensityMatrix& rho, std::size_t q) {
             idle(rho, q, t_read, storage);
         })});

    CellCharacterization out;
    out.cell = cell.name();
    const double t_stored = 2.0 * t_swap + t2q;
    out.ops.push_back({"stored-cnot", t_stored, stored_cnot_err});
    out.ops.push_back({"verified-cnot", t_stored + t2q + t_read,
                       compose({stored_cnot_err, verify_idle_err})});
    recordCharacterization(out);
    return out;
}

CellCharacterization
characterizeUsc(const StandardCell& cell, const CharacterizeOptions& opts)
{
    const auto s = findDevice(cell, devices::DeviceRole::Storage);
    const auto c = findDevice(cell, devices::DeviceRole::Compute, 0);
    const auto p = findDevice(cell, devices::DeviceRole::Compute, 1);
    const auto& storage = cell.deviceList()[s].model;
    const auto& compute = cell.deviceList()[c].model;
    const auto& parity = cell.deviceList()[p].model;

    const double t_swap = storage.gateTime2q;
    const double t2q = compute.gateTime2q;
    const double t_read =
        opts.readoutTime >= 0 ? opts.readoutTime : parity.readoutTime;

    // Primitive errors via density-matrix simulation.
    const double roundtrip_err = oneQubitChannelError(
        [&](DensityMatrix& rho, std::size_t q) {
            idle(rho, q, 2 * t_swap, storage);
            idle(rho, q, 2 * t_swap, compute);
        });
    const double cnot_err = twoQubitChannelError(
        cnot(), [&](DensityMatrix& rho) {
            idle(rho, 0, t2q, compute);
            idle(rho, 1, t2q, parity);
            rho.applyUnitary(cnot(), {0, 1});
            if (opts.extraGateError2q > 0) {
                rho.applyKraus(
                    dm::channels::depolarizing2(opts.extraGateError2q),
                    {0, 1});
            }
        });

    CellCharacterization out;
    out.cell = cell.name();
    for (int w = 2; w <= 6; ++w) {
        // Serialized: per data qubit one storage roundtrip + one CNOT;
        // the ancilla idles across the whole check and is then read.
        const double duration =
            w * (2.0 * t_swap + t2q) + t_read;
        const double anc_idle_err = oneQubitChannelError(
            [&](DensityMatrix& rho, std::size_t q) {
                idle(rho, q, duration - t_read, parity);
            });
        std::vector<double> errs;
        for (int i = 0; i < w; ++i) {
            errs.push_back(roundtrip_err);
            errs.push_back(cnot_err);
        }
        errs.push_back(anc_idle_err);
        out.ops.push_back({"stabilizer-check-w" + std::to_string(w),
                           duration, compose(errs)});
    }
    recordCharacterization(out);
    return out;
}

} // namespace cells
} // namespace hetarch
