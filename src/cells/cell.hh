/**
 * @file
 * Quantum standard cells: physical architectures assembled from devices
 * and optimized for a small set of operations (paper Section 3.2).
 *
 * A StandardCell is a labelled coupling graph over device instances,
 * plus declared readout sites and sub-cell grouping.  Cells are checked
 * against the design rules DR1-DR4 (design_rules.hh) and characterized
 * by exact density-matrix simulation (characterize.hh).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "devices/device.hh"

namespace hetarch {
namespace cells {

/** One device instance inside a cell. */
struct CellDevice
{
    devices::DeviceModel model;
    std::string label;       ///< e.g. "storage0", "parity-ancilla"
    bool readout = false;    ///< has readout circuitry attached
    /** Couplings reserved for connections to *other* cells/modules. */
    int externalPorts = 0;
};

/** Undirected coupling between two devices of a cell. */
struct Coupling
{
    std::size_t a = 0;
    std::size_t b = 0;
};

/** A named group of devices forming a sub-cell (e.g. one Register). */
struct SubCell
{
    std::string name;
    std::vector<std::size_t> devices;
};

/**
 * A standard cell: devices + couplings + sub-cell structure.
 */
class StandardCell
{
  public:
    explicit StandardCell(std::string name_in) : cellName(std::move(name_in))
    {
    }

    const std::string& name() const { return cellName; }

    /** Add a device; returns its index. */
    std::size_t addDevice(CellDevice device);
    /** Couple two devices (indices must exist, no self-coupling). */
    void addCoupling(std::size_t a, std::size_t b);
    /** Declare a sub-cell grouping. */
    void addSubCell(SubCell sub);

    const std::vector<CellDevice>& deviceList() const { return devs; }
    const std::vector<Coupling>& couplings() const { return edges; }
    const std::vector<SubCell>& subCells() const { return subs; }

    /** Number of couplings incident to device @p i (internal only). */
    int degree(std::size_t i) const;
    /** Internal degree plus reserved external ports. */
    int totalDegree(std::size_t i) const;
    /** Indices of devices coupled to @p i. */
    std::vector<std::size_t> neighbors(std::size_t i) const;
    /** True when a path of couplings connects every pair of devices. */
    bool isConnected() const;

    /** Count of devices with readout. */
    std::size_t readoutCount() const;

    /** Total physical footprint (sum of device areas, mm^2). */
    double footprintArea() const;
    /** Total control lines (sum of device control overheads). */
    int controlLines() const;
    /** Total qubit capacity (sum of device modes). */
    int qubitCapacity() const;

  private:
    std::string cellName;
    std::vector<CellDevice> devs;
    std::vector<Coupling> edges;
    std::vector<SubCell> subs;
};

} // namespace cells
} // namespace hetarch
