#include "obs/obs.hh"

#include <map>
#include <mutex>

namespace hetarch {
namespace obs {

namespace {

std::atomic<bool> gTiming{false};
std::atomic<bool> gTracing{false};

/** Small dense per-thread tag for span records. */
std::uint32_t
currentThreadTag()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t tag =
        next.fetch_add(1, std::memory_order_relaxed);
    return tag;
}

} // namespace

void
Histogram::merge(const LocalHistogram& local) noexcept
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        if (local.buckets[i])
            buckets[i].fetch_add(local.buckets[i],
                                 std::memory_order_relaxed);
    n.fetch_add(local.n, std::memory_order_relaxed);
    total.fetch_add(local.total, std::memory_order_relaxed);
}

void
Histogram::reset() noexcept
{
    for (auto& b : buckets)
        b.store(0, std::memory_order_relaxed);
    n.store(0, std::memory_order_relaxed);
    total.store(0, std::memory_order_relaxed);
}

double
histogramQuantile(const Snapshot::HistogramEntry& h, double q)
{
    if (h.count == 0 || h.buckets.empty())
        return 0.0;
    q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    // Continuous 0-based rank; the value at rank r is interpolated
    // uniformly across the records of the bucket containing r.
    const double rank = q * static_cast<double>(h.count - 1);
    std::uint64_t below = 0;
    for (const auto& [lo, count] : h.buckets) {
        if (rank < static_cast<double>(below + count)) {
            if (lo == 0)
                return 0.0; // bucket 0 holds the exact value 0
            const double width = static_cast<double>(lo); // [lo, 2*lo)
            const double frac = (rank - static_cast<double>(below)) /
                                static_cast<double>(count);
            return static_cast<double>(lo) + frac * width;
        }
        below += count;
    }
    // Unreachable when count/buckets are consistent: rank < count.
    const auto& last = h.buckets.back();
    return last.first == 0 ? 0.0 : 2.0 * static_cast<double>(last.first);
}

std::vector<std::pair<std::string, std::uint64_t>>
counterDeltas(const Snapshot& before, const Snapshot& after)
{
    // Both counter lists are name-sorted (Registry::snapshot), so one
    // merge pass suffices; `before` can only be a prefix-subset of
    // `after` (counters register, never unregister).
    std::vector<std::pair<std::string, std::uint64_t>> deltas;
    std::size_t b = 0;
    for (const auto& [name, value] : after.counters) {
        std::uint64_t base = 0;
        while (b < before.counters.size() &&
               before.counters[b].first < name)
            ++b;
        if (b < before.counters.size() &&
            before.counters[b].first == name)
            base = before.counters[b].second;
        if (value > base)
            deltas.emplace_back(name, value - base);
    }
    return deltas;
}

bool
timingEnabled() noexcept
{
    return gTiming.load(std::memory_order_relaxed);
}

void
setTimingEnabled(bool on) noexcept
{
    gTiming.store(on, std::memory_order_relaxed);
}

bool
tracingEnabled() noexcept
{
    return gTracing.load(std::memory_order_relaxed);
}

void
setTracingEnabled(bool on) noexcept
{
    gTracing.store(on, std::memory_order_relaxed);
}

Span::Span(const char* name) noexcept
    : label(name), active(tracingEnabled())
{
    if (active)
        startNs = Registry::instance().nowNs();
}

Span::~Span()
{
    if (!active)
        return;
    auto& registry = Registry::instance();
    registry.addSpan(label, startNs, registry.nowNs() - startNs);
}

struct Registry::Impl
{
    /** Trace-log bound; spans beyond it are counted but dropped. */
    static constexpr std::size_t kMaxSpans = 4096;

    mutable std::mutex mutex;
    // Node-stable containers: handles returned from counter()/
    // histogram() stay valid for the process lifetime.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::vector<SpanRecord> spans;
    std::uint64_t spansDropped = 0;
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
};

Registry::Registry() : impl(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry&
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter&
Registry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    auto& slot = impl->counters[name];
    if (!slot)
        slot.reset(new Counter());
    return *slot;
}

Histogram&
Registry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    auto& slot = impl->histograms[name];
    if (!slot)
        slot.reset(new Histogram());
    return *slot;
}

void
Registry::addSpan(const char* name, std::uint64_t start_ns,
                  std::uint64_t dur_ns)
{
    const std::uint32_t thread = currentThreadTag();
    std::lock_guard<std::mutex> lock(impl->mutex);
    if (impl->spans.size() >= Impl::kMaxSpans) {
        ++impl->spansDropped;
        return;
    }
    impl->spans.push_back({name, start_ns, dur_ns, thread});
}

std::uint64_t
Registry::nowNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - impl->epoch)
            .count());
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    std::lock_guard<std::mutex> lock(impl->mutex);
    // std::map iteration is name-sorted already — the stable order the
    // JSON schema promises.
    snap.counters.reserve(impl->counters.size());
    for (const auto& [name, c] : impl->counters)
        snap.counters.emplace_back(name, c->load());

    snap.histograms.reserve(impl->histograms.size());
    for (const auto& [name, h] : impl->histograms) {
        Snapshot::HistogramEntry entry;
        entry.name = name;
        entry.count = h->count();
        entry.sum = h->sum();
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
            const auto c = h->bucket(i);
            if (c)
                entry.buckets.emplace_back(Histogram::bucketLowerBound(i),
                                           c);
        }
        snap.histograms.push_back(std::move(entry));
    }

    snap.spans = impl->spans;
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    for (auto& [_, c] : impl->counters)
        c->reset();
    for (auto& [_, h] : impl->histograms)
        h->reset();
    impl->spans.clear();
    impl->spansDropped = 0;
}

Counter&
counter(const std::string& name)
{
    return Registry::instance().counter(name);
}

Histogram&
histogram(const std::string& name)
{
    return Registry::instance().histogram(name);
}

} // namespace obs
} // namespace hetarch
