#include "obs/json.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "core/logging.hh"

namespace hetarch {
namespace obs {

namespace {

/** Emit a JSON string literal (metric names never need exotic escapes). */
void
writeString(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            os << c;
        }
    }
    os << '"';
}

/**
 * Recursive-descent parser for the v1 snapshot schema.  Strict: every
 * deviation is fatal with a byte offset, so a corrupted artifact fails
 * loudly instead of comparing cleanly.
 */
class Parser
{
  public:
    explicit Parser(const std::string& text) : src(text) {}

    Snapshot parse()
    {
        Snapshot snap;
        expect('{');
        expectKey("schema");
        const auto schema = parseString();
        if (schema != "hetarch-obs-v1")
            fail("unsupported snapshot schema '" + schema + "'");
        expect(',');
        expectKey("counters");
        parseCounters(snap);
        expect(',');
        expectKey("histograms");
        parseHistograms(snap);
        expect(',');
        expectKey("spans");
        parseSpans(snap);
        expect('}');
        skipWs();
        if (pos != src.size())
            fail("trailing content after snapshot document");
        return snap;
    }

  private:
    [[noreturn]] void fail(const std::string& why) const
    {
        HETARCH_FATAL("obs snapshot parse error at byte ", pos, ": ",
                      why);
    }

    void skipWs()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos])))
            ++pos;
    }

    char peek()
    {
        skipWs();
        if (pos >= src.size())
            fail("unexpected end of input");
        return src[pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', found '" +
                 src[pos] + "'");
        ++pos;
    }

    bool consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos;
        return true;
    }

    void expectKey(const char* key)
    {
        const auto name = parseString();
        if (name != key)
            fail("expected key \"" + std::string(key) + "\", found \"" +
                 name + "\"");
        expect(':');
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos < src.size() && src[pos] != '"') {
            char c = src[pos++];
            if (c == '\\') {
                if (pos >= src.size())
                    fail("unterminated escape");
                const char esc = src[pos++];
                switch (esc) {
                  case '"':
                    c = '"';
                    break;
                  case '\\':
                    c = '\\';
                    break;
                  case 'n':
                    c = '\n';
                    break;
                  case 't':
                    c = '\t';
                    break;
                  default:
                    fail("unsupported escape sequence");
                }
            }
            out += c;
        }
        if (pos >= src.size())
            fail("unterminated string");
        ++pos; // closing quote
        return out;
    }

    std::uint64_t parseU64()
    {
        skipWs();
        const std::size_t begin = pos;
        while (pos < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[pos])))
            ++pos;
        if (pos == begin)
            fail("expected an unsigned integer");
        return std::strtoull(src.substr(begin, pos - begin).c_str(),
                             nullptr, 10);
    }

    void parseCounters(Snapshot& snap)
    {
        expect('{');
        if (consume('}'))
            return;
        do {
            const auto name = parseString();
            expect(':');
            snap.counters.emplace_back(name, parseU64());
        } while (consume(','));
        expect('}');
    }

    void parseHistograms(Snapshot& snap)
    {
        expect('{');
        if (consume('}'))
            return;
        do {
            Snapshot::HistogramEntry entry;
            entry.name = parseString();
            expect(':');
            expect('{');
            expectKey("count");
            entry.count = parseU64();
            expect(',');
            expectKey("sum");
            entry.sum = parseU64();
            expect(',');
            expectKey("buckets");
            expect('[');
            if (!consume(']')) {
                do {
                    expect('[');
                    const auto lo = parseU64();
                    expect(',');
                    const auto count = parseU64();
                    expect(']');
                    entry.buckets.emplace_back(lo, count);
                } while (consume(','));
                expect(']');
            }
            expect('}');
            snap.histograms.push_back(std::move(entry));
        } while (consume(','));
        expect('}');
    }

    void parseSpans(Snapshot& snap)
    {
        expect('[');
        if (consume(']'))
            return;
        do {
            SpanRecord span;
            expect('{');
            expectKey("name");
            span.name = parseString();
            expect(',');
            expectKey("start_ns");
            span.startNs = parseU64();
            expect(',');
            expectKey("dur_ns");
            span.durNs = parseU64();
            expect(',');
            expectKey("thread");
            span.thread = static_cast<std::uint32_t>(parseU64());
            expect('}');
            snap.spans.push_back(std::move(span));
        } while (consume(','));
        expect(']');
    }

    const std::string& src;
    std::size_t pos = 0;
};

/** --metrics-out destination captured by configureMetricsFromArgs. */
std::string&
requestedMetricsPath()
{
    static std::string path;
    return path;
}

void
writeRequestedSnapshot()
{
    const auto& path = requestedMetricsPath();
    if (!path.empty())
        writeSnapshotFile(Registry::instance().snapshot(), path);
}

} // namespace

void
writeSnapshotJson(const Snapshot& snap, std::ostream& os)
{
    os << "{\n  \"schema\": \"hetarch-obs-v1\",\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
        os << (first ? "\n    " : ",\n    ");
        writeString(os, name);
        os << ": " << value;
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";

    first = true;
    for (const auto& h : snap.histograms) {
        os << (first ? "\n    " : ",\n    ");
        writeString(os, h.name);
        os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
           << ", \"buckets\": [";
        bool first_bucket = true;
        for (const auto& [lo, count] : h.buckets) {
            os << (first_bucket ? "" : ", ") << '[' << lo << ", "
               << count << ']';
            first_bucket = false;
        }
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"spans\": [";

    first = true;
    for (const auto& span : snap.spans) {
        os << (first ? "\n    " : ",\n    ") << "{\"name\": ";
        writeString(os, span.name);
        os << ", \"start_ns\": " << span.startNs
           << ", \"dur_ns\": " << span.durNs
           << ", \"thread\": " << span.thread << '}';
        first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
}

std::string
toJson(const Snapshot& snap)
{
    std::ostringstream os;
    writeSnapshotJson(snap, os);
    return os.str();
}

Snapshot
parseSnapshotJson(const std::string& text)
{
    return Parser(text).parse();
}

bool
writeSnapshotFile(const Snapshot& snap, const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        warn("obs: cannot write metrics snapshot to '", path, "'");
        return false;
    }
    writeSnapshotJson(snap, out);
    return out.good();
}

TextTable
snapshotTable(const Snapshot& snap)
{
    TextTable t(
        {"metric", "kind", "count", "sum", "mean", "p50", "p90", "p99"});
    for (const auto& [name, value] : snap.counters)
        t.addRow({name, "counter", std::to_string(value), "", "", "", "",
                  ""});
    for (const auto& h : snap.histograms) {
        const double mean =
            h.count ? static_cast<double>(h.sum) /
                          static_cast<double>(h.count)
                    : 0.0;
        // Quantiles are estimated from the power-of-two buckets at
        // display time; they are never serialized (schema unchanged).
        t.addRow({h.name, "histogram", std::to_string(h.count),
                  std::to_string(h.sum),
                  h.count ? formatFixed(mean, 1) : "",
                  h.count ? formatFixed(histogramQuantile(h, 0.5), 1) : "",
                  h.count ? formatFixed(histogramQuantile(h, 0.9), 1) : "",
                  h.count ? formatFixed(histogramQuantile(h, 0.99), 1)
                          : ""});
    }
    return t;
}

const std::string&
metricsOutPath()
{
    return requestedMetricsPath();
}

bool
flushConfiguredMetrics()
{
    auto& path = requestedMetricsPath();
    if (path.empty())
        return false;
    writeSnapshotFile(Registry::instance().snapshot(), path);
    path.clear(); // disarm the atexit writer
    return true;
}

void
configureMetricsFromArgs(int& argc, char** argv)
{
    auto& path = requestedMetricsPath();
    const bool already_registered = !path.empty();
    // Startup-only configuration read; nothing writes the environment.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("HETARCH_METRICS_OUT"))
        path = env;

    constexpr const char* kFlag = "--metrics-out=";
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0)
            path = argv[i] + std::strlen(kFlag);
        else
            argv[out++] = argv[i];
    }
    argc = out;

    if (path.empty())
        return;
    setTimingEnabled(true);
    setTracingEnabled(true);
    if (!already_registered)
        std::atexit(writeRequestedSnapshot);
}

} // namespace obs
} // namespace hetarch
