/**
 * @file
 * Stable-schema JSON serialization of obs snapshots, plus the shared
 * --metrics-out plumbing used by the bench/CLI/example binaries.
 *
 * Schema (version hetarch-obs-v1; field order fixed, names sorted):
 *
 *   {
 *     "schema": "hetarch-obs-v1",
 *     "counters": { "<name>": <u64>, ... },
 *     "histograms": {
 *       "<name>": { "count": <u64>, "sum": <u64>,
 *                   "buckets": [[<lower_bound>, <count>], ...] },
 *       ...
 *     },
 *     "spans": [ { "name": "<s>", "start_ns": <u64>,
 *                  "dur_ns": <u64>, "thread": <u32> }, ... ]
 *   }
 *
 * Counters are the deterministic, CI-gated part of the schema;
 * histograms and spans are advisory (see obs.hh).  parseSnapshotJson
 * accepts exactly this schema and is the round-trip inverse of
 * toJson — it exists so tools (and tests) can reload an artifact
 * without a third-party JSON dependency.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "core/table.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace obs {

/** Serialize @p snap in the stable v1 schema. */
std::string toJson(const Snapshot& snap);

/** toJson, streamed. */
void writeSnapshotJson(const Snapshot& snap, std::ostream& os);

/**
 * Parse a v1 snapshot document.  Fatal (exit 1) on malformed input or
 * a schema mismatch — this parser is for our own artifacts, not
 * arbitrary JSON.
 */
Snapshot parseSnapshotJson(const std::string& text);

/** Write the snapshot to @p path; warns and returns false on failure. */
bool writeSnapshotFile(const Snapshot& snap, const std::string& path);

/** Human-readable summary table (counters, then histogram stats). */
TextTable snapshotTable(const Snapshot& snap);

/**
 * Consume a --metrics-out=PATH argument (or the HETARCH_METRICS_OUT
 * environment variable) from argv: enables timing and tracing and
 * registers an atexit hook that writes the registry snapshot to PATH
 * when the process ends.  Leaves unrelated arguments in place.
 */
void configureMetricsFromArgs(int& argc, char** argv);

/** The --metrics-out path captured above; empty when not configured. */
const std::string& metricsOutPath();

/**
 * Write the configured snapshot immediately and disarm the atexit
 * writer.  Bench binaries call this between the deterministic paper
 * artifact and the google-benchmark microbenchmarks, whose adaptive
 * iteration counts would otherwise leak machine-dependent event counts
 * into the exported file.  Returns false when no path is configured.
 */
bool flushConfiguredMetrics();

} // namespace obs
} // namespace hetarch
