/**
 * @file
 * Low-overhead observability: counters, histograms, timers and trace
 * spans, aggregated through registry snapshots.
 *
 * The layer has a two-tier determinism contract that mirrors the exec
 * engine's:
 *
 *   - **Counters** record logical progress (shots sampled, cells
 *     evaluated, cache hits).  Every counter MUST be thread-count
 *     invariant: the same seeded workload produces bit-identical
 *     counter values at any worker count, because counts are sums of
 *     per-task contributions whose partition never depends on
 *     scheduling (see exec/thread_pool.hh).  CI gates on counters.
 *
 *   - **Histograms** may additionally record timing- or scheduling-
 *     dependent events (task wall time, queue wait).  Their contents
 *     are advisory.  Value histograms fed from deterministic data
 *     (e.g. qec.syndrome_weight) are thread-count invariant too, but
 *     only counters are contractually pinned.
 *
 * Overhead contract: with no sink attached (the default), a counter
 * event costs exactly one relaxed atomic add; a histogram record costs
 * three (bucket, count, sum); hot loops can batch through a
 * LocalHistogram and flush once per chunk.  Timers and spans read the
 * clock only while timing/tracing is enabled — disabled, a ScopedTimer
 * is one relaxed atomic load and a branch.
 *
 * Handles are registered once (typically as file-scope references via
 * obs::counter / obs::histogram) and are valid for the process
 * lifetime; Registry::reset() zeroes values but never invalidates
 * handles.
 */

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hetarch {
namespace obs {

class Registry;
class LocalHistogram;

/** Monotone event count; handle to one registry slot. */
class Counter
{
  public:
    /** Record @p n events: a single relaxed atomic add. */
    void add(std::uint64_t n = 1) noexcept
    {
        value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t load() const noexcept
    {
        return value.load(std::memory_order_relaxed);
    }

    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

  private:
    friend class Registry;
    Counter() = default;
    void reset() noexcept { value.store(0, std::memory_order_relaxed); }

    std::atomic<std::uint64_t> value{0};
};

/**
 * Power-of-two-bucketed distribution of unsigned values (durations in
 * ns, syndrome weights, ...).  Bucket 0 holds the value 0; bucket i
 * holds [2^(i-1), 2^i).
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 65;

    /** Bucket index of @p v: 0 for 0, else bit_width(v). */
    static std::size_t bucketIndex(std::uint64_t v) noexcept
    {
        return static_cast<std::size_t>(std::bit_width(v));
    }

    /** Smallest value landing in bucket @p i. */
    static std::uint64_t bucketLowerBound(std::size_t i) noexcept
    {
        return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
    }

    /** Record one value: three relaxed atomic adds. */
    void record(std::uint64_t v) noexcept
    {
        buckets[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
        n.fetch_add(1, std::memory_order_relaxed);
        total.fetch_add(v, std::memory_order_relaxed);
    }

    /** Fold a thread-private batch in (one add per non-empty bucket). */
    void merge(const LocalHistogram& local) noexcept;

    std::uint64_t count() const noexcept
    {
        return n.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const noexcept
    {
        return total.load(std::memory_order_relaxed);
    }
    std::uint64_t bucket(std::size_t i) const noexcept
    {
        return buckets[i].load(std::memory_order_relaxed);
    }

    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

  private:
    friend class Registry;
    Histogram() = default;
    void reset() noexcept;

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> n{0};
    std::atomic<std::uint64_t> total{0};
};

/**
 * Thread-private histogram for hot loops: record without atomics,
 * flush once per chunk via Histogram::merge.
 */
class LocalHistogram
{
  public:
    void record(std::uint64_t v) noexcept
    {
        buckets[Histogram::bucketIndex(v)] += 1;
        n += 1;
        total += v;
    }

    std::uint64_t count() const noexcept { return n; }
    std::uint64_t sum() const noexcept { return total; }

  private:
    friend class Histogram;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    std::uint64_t n = 0;
    std::uint64_t total = 0;
};

/** Whether timers read the clock (off by default). */
bool timingEnabled() noexcept;
void setTimingEnabled(bool on) noexcept;

/** Whether spans are captured into the trace log (off by default). */
bool tracingEnabled() noexcept;
void setTracingEnabled(bool on) noexcept;

/**
 * RAII wall-time measurement into a histogram (nanoseconds).  When
 * timing is disabled the constructor is a relaxed load and a branch;
 * no clock is read.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram& h) noexcept
        : hist(timingEnabled() ? &h : nullptr)
    {
        if (hist)
            start = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if (hist)
            hist->record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count()));
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

  private:
    Histogram* hist;
    std::chrono::steady_clock::time_point start;
};

/** One captured trace span. */
struct SpanRecord
{
    std::string name;
    std::uint64_t startNs = 0; ///< ns since the registry epoch
    std::uint64_t durNs = 0;
    std::uint32_t thread = 0;  ///< small per-thread tag, not an OS id
};

/**
 * RAII trace span.  When tracing is disabled construction is a relaxed
 * load and a branch; enabled, the span lands in the registry's bounded
 * trace log at destruction.
 */
class Span
{
  public:
    explicit Span(const char* name) noexcept;
    ~Span();

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

  private:
    const char* label;
    std::uint64_t startNs = 0;
    bool active;
};

/** Point-in-time copy of every registered metric (stable ordering). */
struct Snapshot
{
    struct HistogramEntry
    {
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        /** (bucket lower bound, count) for non-empty buckets, ascending. */
        std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
    };

    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<HistogramEntry> histograms;
    std::vector<SpanRecord> spans;
};

/**
 * Estimate the @p q quantile (0..1) of a snapshotted histogram by
 * linear interpolation inside its power-of-two buckets.  Display-time
 * estimation only: quantiles are derived from the stored buckets, never
 * serialized, so the v1 snapshot schema (and the determinism contract —
 * histograms stay advisory) is unchanged.  Returns 0 for an empty
 * histogram; the relative error is bounded by the 2x bucket width.
 */
double histogramQuantile(const Snapshot::HistogramEntry& h, double q);

/**
 * Per-counter difference @p after minus @p before, name-sorted, with
 * zero-delta counters dropped.  Counters absent from @p before are
 * treated as zero (registration interleaves with recording).  Used by
 * the job service to attach "what this job recorded" deltas to
 * results; when other work shares the registry concurrently a delta
 * attributes that work too, so deltas are advisory telemetry, never
 * part of a determinism contract.
 */
std::vector<std::pair<std::string, std::uint64_t>>
counterDeltas(const Snapshot& before, const Snapshot& after);

/**
 * Process-wide metric registry.  Registration interns by name (two
 * lookups of the same name return the same slot); snapshots copy the
 * current values without pausing writers.
 */
class Registry
{
  public:
    static Registry& instance();

    Counter& counter(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** Append a span to the bounded trace log (drops when full). */
    void addSpan(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns);

    /** Nanoseconds since the registry was created (span timebase). */
    std::uint64_t nowNs() const;

    /** Copy of all metrics, name-sorted; spans in capture order. */
    Snapshot snapshot() const;

    /** Zero every counter/histogram and clear the trace log. */
    void reset();

  private:
    Registry();
    ~Registry();
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/** Registry::instance().counter(name) — for file-scope registration. */
Counter& counter(const std::string& name);

/** Registry::instance().histogram(name). */
Histogram& histogram(const std::string& name);

} // namespace obs
} // namespace hetarch
