/**
 * @file
 * Code teleportation (CT) module (paper Section 4.3, Figs. 10-12,
 * Table 4).
 *
 * A CT resource state |Phi+>_AB between logical codes A and B is
 * prepared from: distilled EPs (entanglement-distillation sub-module),
 * a CAT state of size |A|+|B| built by SeqOp cells and bridged across
 * the EP link, logical |+> states prepared on UEC sub-modules, a
 * transversal CNOT between the CAT and the logical states, and a
 * logical measurement.  Following the paper, each sub-module is
 * characterized independently and the module-level logical error is
 * composed from independent error rates; symmetric binary composition
 * (1 - prod(1 - 2 p_i)) / 2 keeps the total physical (<= 1/2,
 * saturating at the maximally mixed value the paper reports for
 * failing homogeneous configurations).
 */

#pragma once

#include <cstdint>
#include <string>

#include "core/units.hh"
#include "qec/css_code.hh"

namespace hetarch {
namespace teleport {

/** Configuration of a CT-state preparation experiment. */
struct CtConfig
{
    /** Storage coherence Ts (T1 = T2), heterogeneous side. */
    double ts = 50.0 * units::ms;
    /** Compute coherence Tc. */
    double tc = 0.5 * units::ms;
    /** Heterogeneous architecture (else sea-of-qubits everywhere). */
    bool heterogeneous = true;

    /** Raw EP generation rate (paper Fig. 12: 1000 kHz). */
    double epRate = 1000.0 * units::kHz;
    /** Distillation target fidelity (paper: 0.995). */
    double targetEpFidelity = 0.995;
    /** Raw EP infidelity. */
    double epInfidelity = 0.03;
    /** EPs consumed to entangle and verify the CAT state. */
    int epsForCat = 3;

    /** Monte-Carlo shots for the UEC / lattice |+> preparations. */
    std::size_t shots = 3000;
    std::uint64_t seed = 1;
};

/** Per-component breakdown of a CT-state preparation. */
struct CtResult
{
    double errorProbability = 0.0; ///< total logical error of the CT state
    double epInfidelity = 1.0;     ///< achieved distilled-EP infidelity
    bool epTargetMet = false;      ///< distillation reached the target
    double catError = 0.0;         ///< CAT generation + bridge + verify
    double prepErrorA = 0.0;       ///< logical |+> preparation, code A
    double prepErrorB = 0.0;       ///< logical |+> preparation, code B
    double transversalError = 0.0; ///< parallel CNOT + logical readout
};

/** Symmetric binary error composition: (1 - prod(1 - 2 p_i)) / 2. */
double composeLogicalErrors(const std::vector<double>& errors);

/**
 * Characterize the preparation of a CT state between @p code_a and
 * @p code_b (paper Fig. 10 steps 1-6).
 */
CtResult prepareCtState(const qec::CssCode& code_a,
                        const qec::CssCode& code_b,
                        const CtConfig& config);

} // namespace teleport
} // namespace hetarch

#include "module/module.hh"

namespace hetarch {
namespace teleport {

/**
 * The CT module as a HetArch hierarchy object (paper Fig. 11): an
 * entanglement-distillation sub-module, two CAT generators (SeqOp
 * cells), and two universal error correction sub-modules (USC cells).
 */
module::Module buildCodeTeleportModule(double ts_ns);

} // namespace teleport
} // namespace hetarch
