#include "teleport/code_teleport.hh"

#include <algorithm>
#include <cmath>

#include "cells/characterize.hh"
#include "cells/standard_cells.hh"
#include "core/logging.hh"
#include "distill/module_sim.hh"
#include "exec/thread_pool.hh"
#include "lint/verify_cell.hh"
#include "obs/obs.hh"
#include "qec/noise_model.hh"
#include "uec/experiment.hh"

namespace hetarch {
namespace teleport {

namespace {

obs::Counter& cCtPreps = obs::counter("teleport.ct_preps");
obs::Histogram& hCtPrepNs = obs::histogram("teleport.ct_prep_ns");

} // namespace

double
composeLogicalErrors(const std::vector<double>& errors)
{
    double keep = 1.0;
    for (auto e : errors) {
        HETARCH_ASSERT(e >= 0.0 && e <= 0.5 + 1e-12,
                       "logical error rate out of range: ", e);
        keep *= 1.0 - 2.0 * std::min(e, 0.5);
    }
    return 0.5 * (1.0 - keep);
}

namespace {

/** Run the distillation sub-module; returns achieved EP infidelity. */
std::pair<double, bool>
distilledEpQuality(const CtConfig& config)
{
    distill::DistillConfig dc;
    dc.ts = config.heterogeneous ? config.ts : config.tc;
    dc.tc = config.tc;
    dc.heterogeneous = config.heterogeneous;
    dc.epRate = config.epRate;
    dc.epInfidelity = config.epInfidelity;
    dc.targetFidelity = config.targetEpFidelity;
    dc.seed = config.seed;
    const auto res = distill::simulateDistillation(dc, 2.0 * units::ms);

    if (res.distilled > 0)
        return {1.0 - config.targetEpFidelity, true};
    // Distillation never reached the target (paper: some homogeneous
    // experiments could not achieve the 99.5% EP target); fall back to
    // the best EP ever present in the output register, or a raw EP.
    double best = config.epInfidelity;
    for (const auto& point : res.trace)
        best = std::min(best, point.bestInfidelity);
    return {best, false};
}

} // namespace

CtResult
prepareCtState(const qec::CssCode& code_a, const qec::CssCode& code_b,
               const CtConfig& config)
{
    cCtPreps.add();
    obs::ScopedTimer timer(hCtPrepNs);
    obs::Span span("teleport.prepare_ct_state");
    CtResult out;

    // The three sub-module characterizations below are independent
    // (the paper's cell-once/module-composed claim): distillation of
    // the EP link and the two logical-|+> preparations.  Run them
    // concurrently on the exec engine; each writes its own slot, so
    // results match the sequential order exactly.
    auto prep_error = [&](const qec::CssCode& code, std::uint64_t seed) {
        const auto rounds = std::max<std::size_t>(code.distance, 2);
        double per_round;
        if (config.heterogeneous) {
            per_round = uec::uecLogicalErrorPerRound(
                code, config.ts, rounds, config.shots, seed);
        } else {
            uec::LatticeNoise ln;
            ln.tc = config.tc;
            per_round = uec::homogeneousLogicalErrorPerRound(
                code, rounds, config.shots, seed, ln);
        }
        // d verification rounds of stabilizer checks project and
        // protect the logical |+>.
        std::vector<double> rounds_err(rounds, per_round);
        return composeLogicalErrors(rounds_err);
    };

    std::pair<double, bool> ep{1.0, false};
    exec::parallelInvoke({
        [&] { ep = distilledEpQuality(config); },
        [&] { out.prepErrorA = prep_error(code_a, config.seed + 101); },
        [&] { out.prepErrorB = prep_error(code_b, config.seed + 202); },
    });

    // --- step 1: distilled EPs ---------------------------------------
    const auto [eps_ep, met] = ep;
    out.epInfidelity = eps_ep;
    out.epTargetMet = met;

    // --- step 2: CAT state of size |A| + |B| --------------------------
    const auto cat_size = code_a.n + code_b.n;
    auto storage = devices::storageWithCoherence(
        config.heterogeneous ? config.ts : config.tc);
    // Section 4 operating point: every two-qubit gate, including the
    // storage SWAP, takes 100 ns.
    storage.gateTime2q = 100.0;
    const auto compute = devices::computeWithCoherence(config.tc);

    double e_cnot, e_verified, t_cnot, t_verified;
    if (config.heterogeneous) {
        // SeqOp cells: CNOTs between stored qubits, parity verified.
        const auto seqop = cells::makeSeqOp(storage, compute);
        const auto ch = cells::characterizeSeqOp(seqop);
        e_cnot = ch.op("stored-cnot").errorRate;
        e_verified = ch.op("verified-cnot").errorRate;
        t_cnot = ch.op("stored-cnot").duration;
        t_verified = ch.op("verified-cnot").duration;
    } else {
        // Plain transmon CNOT chain; qubits idle on compute devices.
        const auto parcheck = cells::makeParCheck(compute);
        const auto ch = cells::characterizeParCheck(parcheck);
        e_cnot = ch.op("cnot").errorRate;
        e_verified = ch.op("parity-check").errorRate;
        t_cnot = ch.op("cnot").duration;
        t_verified = ch.op("parity-check").duration;
    }
    std::vector<double> cat_errors;
    // Sequential CNOTs build the CAT (size-1 gates), verified by a
    // pair of parity checks, bridged with epsForCat remote gates that
    // each consume one distilled EP.
    for (std::size_t i = 0; i + 1 < cat_size; ++i)
        cat_errors.push_back(e_cnot);
    for (int i = 0; i < 2; ++i)
        cat_errors.push_back(e_verified);
    for (int i = 0; i < config.epsForCat; ++i)
        cat_errors.push_back(eps_ep);
    // While the CAT is built *sequentially*, every CAT qubit idles for
    // the full build: in storage (Ts) on the heterogeneous side, on
    // bare transmons (Tc) in the sea of qubits.  This is the paper's
    // "idling errors from CAT state parity checks" term and the main
    // reason heterogeneous CT wins even for planar code pairs.
    const double t_build = static_cast<double>(cat_size - 1) * t_cnot +
                           2.0 * t_verified;
    const double t_mem_cat =
        config.heterogeneous ? config.ts : config.tc;
    const auto build_idle = qec::idleTwirl(t_build, t_mem_cat, t_mem_cat);
    const double e_build_idle =
        build_idle.px + build_idle.py + build_idle.pz;
    for (std::size_t i = 0; i < cat_size; ++i)
        cat_errors.push_back(e_build_idle);
    out.catError = composeLogicalErrors(cat_errors);

    // --- step 3: logical |+> preparation on the two QEC sub-modules ---
    // (computed concurrently with step 1 above: prepErrorA/prepErrorB)

    // --- steps 4-6: transversal CNOT, logical measure, correction -----
    // One CNOT per CAT qubit plus idling during the 1 us readout.
    const double t_meas = 1.0 * units::us;
    const double idle_t = config.heterogeneous ? config.ts : config.tc;
    const auto idle = qec::idleTwirl(t_meas, idle_t, idle_t);
    const double e_idle = idle.px + idle.py + idle.pz;
    std::vector<double> trans_errors;
    for (std::size_t i = 0; i < cat_size; ++i) {
        trans_errors.push_back(e_cnot);
        trans_errors.push_back(e_idle);
    }
    out.transversalError = composeLogicalErrors(trans_errors);

    out.errorProbability = composeLogicalErrors(
        {out.catError, out.prepErrorA, out.prepErrorB,
         out.transversalError});
    return out;
}

module::Module
buildCodeTeleportModule(double ts_ns)
{
    const auto storage = devices::storageWithCoherence(ts_ns);
    const auto compute = devices::fixedFrequencyTransmon();

    module::Module top("code-teleportation");
    top.addSubModule(distill::buildDistillationModule(ts_ns));

    // Debug builds verify every cell (DRC + lowered-schedule lint)
    // before it is wired into the module tree.
    auto verified = [](cells::StandardCell cell) {
#ifndef NDEBUG
        const auto report = lint::verifyCell(cell);
        HETARCH_ASSERT(report.clean(), "cell '", cell.name(),
                       "' fails verification:\n", report.toString());
#endif
        return cell;
    };

    for (const char* side : {"A", "B"}) {
        module::Module cat(std::string("cat-generator-") + side);
        cat.addCell(verified(cells::makeSeqOp(storage, compute)));
        top.addSubModule(std::move(cat));

        module::Module uec_mod(std::string("uec-") + side);
        uec_mod.addCell(verified(cells::makeUsc(storage, compute)));
        top.addSubModule(std::move(uec_mod));
    }
    return top;
}

} // namespace teleport
} // namespace hetarch
